//! Catalog-wide scenario sweeps: every registered code family × an
//! error-rate grid, raced through the portfolio engine and emitted as a
//! machine-readable benchmark trajectory (`BENCH_sweep.json`, the same
//! shape as `BENCH_portfolio.json`).
//!
//! One entry point, [`SweepOptions`]: grid config plus the optional
//! extras (a persistent registry, fleet worker addresses, local worker
//! count) as builder methods. Zero fleet workers fans cells out over
//! rayon with the worker-loop pattern; with worker addresses the
//! [`crate::fleet`] coordinator distributes cells to remote
//! `asynd serve` processes over the framed v2 protocol. Either way each
//! cell evaluates under its *tenant's* salt — the exact salt a schedule
//! server resolves for the same (code, noise, shots) — so the emitted
//! records are bit-identical for any worker count, local or remote
//! (wall-clock members aside; see [`canonical_report_value`]).

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use asynd_circuit::artifact::ScheduleArtifact;
use asynd_circuit::{EstimateOptions, Evaluator, Schedule, DEFAULT_CACHE_CAPACITY};
use asynd_codes::catalog::{families, CatalogEntry};
use asynd_decode::factory_for;
use asynd_portfolio::{Portfolio, PortfolioConfig};
use asynd_registry::Registry;
use asynd_sim::mix_seed;
use asynd_telemetry::Histogram;
use serde_json::{Map, Value};

use crate::protocol::{CodeRef, JobOutcome, JobRequest, NoiseSpec, StrategyChoice};
use crate::tenants::{tenant_salt, TenantMap};
use crate::{fnv64, ServerError};

/// Configuration of one catalog sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// The physical error rates of the grid (each becomes a
    /// [`NoiseSpec::Scaled`] model).
    pub error_rates: Vec<f64>,
    /// Registry family names to sweep (empty = every registered family).
    pub families: Vec<String>,
    /// Skip codes with more data qubits than this (keeps smoke sweeps in
    /// the minutes range).
    pub max_qubits: usize,
    /// Entries taken per family, in scaling order (`0` = all).
    pub entries_per_family: usize,
    /// Per-strategy evaluation grant as a multiple of the code's
    /// cheapest-possible MCTS run (`total_checks + 2`), which keeps every
    /// strategy above its budget floor on every code size.
    pub budget_multiplier: u64,
    /// Monte-Carlo shots per evaluation.
    pub shots: usize,
    /// Worker threads fanning cells out (`0` = rayon's parallelism).
    pub workers: usize,
}

impl SweepConfig {
    /// The standard sweep: all families, three error rates, all entries
    /// up to 30 data qubits.
    pub fn standard() -> SweepConfig {
        SweepConfig {
            seed: 2026,
            error_rates: vec![1e-3, 3e-3, 7.4e-3],
            families: Vec::new(),
            max_qubits: 30,
            entries_per_family: 0,
            budget_multiplier: 2,
            shots: 600,
            workers: 0,
        }
    }

    /// The CI smoke sweep: one (smallest) entry per family, reduced
    /// budgets and shots. Still covers ≥ 6 distinct codes × 3 rates.
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            entries_per_family: 1,
            budget_multiplier: 1,
            shots: 240,
            ..SweepConfig::standard()
        }
    }
}

/// One record of the sweep trajectory: a strategy's result on one
/// (code, error rate) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Registry family name.
    pub family: String,
    /// Display label of the code instance.
    pub code: String,
    /// The cell's physical error rate.
    pub error_rate: f64,
    /// Strategy name.
    pub strategy: String,
    /// Wall-clock of the strategy in milliseconds (observability only).
    pub wall_ms: f64,
    /// Achieved logical error rate.
    pub p_overall: f64,
    /// Depth of the strategy's best schedule.
    pub depth: usize,
    /// Canonical key of the strategy's best schedule (hex).
    pub schedule_key: String,
    /// Metered evaluation spend.
    pub evaluations: u64,
    /// Cell-level shared-cache hit rate.
    pub cache_hit_rate: f64,
    /// Whether the strategy won its cell.
    pub winner: bool,
    /// Whether the cell's race was warm-started from a registry
    /// artifact.
    pub warm_start: bool,
}

impl SweepRecord {
    /// Serializes one record (same member style as the portfolio bench's
    /// trajectory records).
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("family", Value::from(self.family.as_str()));
        map.insert("code", Value::from(self.code.as_str()));
        map.insert("error_rate", Value::from(self.error_rate));
        map.insert("strategy", Value::from(self.strategy.as_str()));
        map.insert("mode", Value::from("race"));
        map.insert("wall_ms", Value::from(self.wall_ms));
        map.insert("p_overall", Value::from(self.p_overall));
        map.insert("depth", Value::from(self.depth));
        map.insert("schedule_key", Value::from(self.schedule_key.as_str()));
        map.insert("evaluations", Value::from(self.evaluations));
        map.insert("cache_hit_rate", Value::from(self.cache_hit_rate));
        map.insert("winner", Value::from(self.winner));
        map.insert("warm_start", Value::from(self.warm_start));
        Value::Object(map)
    }
}

/// Per-cell wall-clock phase breakdown: where one grid cell's time went
/// (observability only — all timings are outside the determinism
/// contract).
#[derive(Debug, Clone, PartialEq)]
pub struct CellPhases {
    /// Registry family name of the cell.
    pub family: String,
    /// Display label of the cell's code instance.
    pub code: String,
    /// The cell's physical error rate.
    pub error_rate: f64,
    /// Registry warm-start lookup, in milliseconds (0 without a
    /// registry).
    pub lookup_ms: f64,
    /// The portfolio race itself, in milliseconds.
    pub race_ms: f64,
    /// Registry store of the winner, in milliseconds (0 without a
    /// registry).
    pub store_ms: f64,
    /// Elapsed wall-time of the whole cell, in milliseconds.
    pub wall_ms: f64,
}

impl CellPhases {
    /// Serializes one phase-breakdown entry.
    pub fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("family", Value::from(self.family.as_str()));
        map.insert("code", Value::from(self.code.as_str()));
        map.insert("error_rate", Value::from(self.error_rate));
        map.insert("lookup_ms", Value::from(self.lookup_ms));
        map.insert("race_ms", Value::from(self.race_ms));
        map.insert("store_ms", Value::from(self.store_ms));
        map.insert("wall_ms", Value::from(self.wall_ms));
        Value::Object(map)
    }
}

/// The outcome of a sweep: all records plus coverage counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One record per (cell, strategy), in deterministic cell order.
    pub records: Vec<SweepRecord>,
    /// Per-cell phase breakdowns, in the same cell order as `records`
    /// (one entry per cell; each cell contributes four records).
    pub phases: Vec<CellPhases>,
    /// Distinct code instances covered.
    pub codes: usize,
    /// Error rates covered.
    pub rates: usize,
    /// Grid cells executed (one portfolio race each).
    pub cells: usize,
    /// Cells warm-started from a registry artifact (0 without a
    /// registry).
    pub warm_cells: usize,
    /// Winning artifacts newly stored into the registry (0 without one).
    pub stored: usize,
}

impl SweepReport {
    /// Serializes the full trajectory document (the `BENCH_sweep.json`
    /// shape: `generated_by` + `records`, like `BENCH_portfolio.json`).
    pub fn to_json(&self, config: &SweepConfig) -> Value {
        let mut doc = Map::new();
        doc.insert("generated_by", Value::from("asynd sweep"));
        let mut cfg = Map::new();
        cfg.insert("seed", Value::from(config.seed));
        cfg.insert("shots", Value::from(config.shots));
        cfg.insert("budget_multiplier", Value::from(config.budget_multiplier));
        cfg.insert("max_qubits", Value::from(config.max_qubits));
        cfg.insert("entries_per_family", Value::from(config.entries_per_family));
        cfg.insert(
            "error_rates",
            Value::Array(config.error_rates.iter().map(|&r| Value::from(r)).collect()),
        );
        doc.insert("config", Value::Object(cfg));
        let mut coverage = Map::new();
        coverage.insert("codes", Value::from(self.codes));
        coverage.insert("error_rates", Value::from(self.rates));
        coverage.insert("records", Value::from(self.records.len()));
        coverage.insert("cells", Value::from(self.cells));
        coverage.insert("warm_cells", Value::from(self.warm_cells));
        coverage.insert("stored_artifacts", Value::from(self.stored));
        doc.insert("coverage", Value::Object(coverage));
        doc.insert(
            "records",
            Value::Array(self.records.iter().map(SweepRecord::to_json).collect()),
        );
        doc.insert("phases", Value::Array(self.phases.iter().map(CellPhases::to_json).collect()));
        Value::Object(doc)
    }

    /// Writes the trajectory document to `path` (pretty-printed).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (parent directories are created).
    pub fn write(&self, config: &SweepConfig, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let text = serde_json::to_string_pretty(&self.to_json(config))
            .expect("sweep serialization is infallible");
        std::fs::write(path, text + "\n")
    }

    /// Renders the winners as a fixed-width table (one row per cell) for
    /// terminals and EXPERIMENTS.md.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<34} {:>9}  {:<12} {:>10} {:>6} {:>9}\n",
            "family", "code", "rate", "winner", "p_overall", "depth", "wall_ms"
        ));
        // Winners come one per cell, in cell order — aligned with the
        // phase breakdowns, whose wall-time the summary rows report.
        for (record, phases) in self.records.iter().filter(|r| r.winner).zip(&self.phases) {
            out.push_str(&format!(
                "{:<24} {:<34} {:>9} {:<12} {:>11.3e} {:>6} {:>9.1}\n",
                record.family,
                truncate(&record.code, 34),
                format!("{}", record.error_rate),
                record.strategy,
                record.p_overall,
                record.depth,
                phases.wall_ms,
            ));
        }
        out
    }
}

fn truncate(text: &str, limit: usize) -> String {
    if text.chars().count() <= limit {
        text.to_string()
    } else {
        let head: String = text.chars().take(limit.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

/// What one cell produced: its records plus its registry interaction
/// and where its wall-time went (identity-free; the report assembly
/// attaches family/code/rate).
pub(crate) struct CellOutcome {
    pub(crate) records: Vec<SweepRecord>,
    pub(crate) warm_start: bool,
    pub(crate) stored: bool,
    pub(crate) lookup_ms: f64,
    pub(crate) race_ms: f64,
    pub(crate) store_ms: f64,
    pub(crate) wall_ms: f64,
}

/// The sweep's latency histograms, resolved once from the process-wide
/// telemetry registry so `asynd metrics` sees sweep phases too.
pub(crate) struct SweepTelemetry {
    pub(crate) lookup_us: Histogram,
    race_us: Histogram,
    pub(crate) store_us: Histogram,
    pub(crate) cell_wall_us: Histogram,
}

impl SweepTelemetry {
    pub(crate) fn resolve() -> SweepTelemetry {
        let registry = asynd_telemetry::global();
        SweepTelemetry {
            lookup_us: registry.histogram("asynd_sweep_lookup_us"),
            race_us: registry.histogram("asynd_sweep_race_us"),
            store_us: registry.histogram("asynd_sweep_store_us"),
            cell_wall_us: registry.histogram("asynd_sweep_cell_wall_us"),
        }
    }
}

/// One fan-out slot: the (eventual) outcome of one cell.
pub(crate) type CellSlot = Mutex<Option<Result<CellOutcome, ServerError>>>;

/// One unit of sweep work.
pub(crate) struct Cell {
    pub(crate) family: &'static str,
    pub(crate) entry: CatalogEntry,
    pub(crate) entry_index: usize,
    pub(crate) rate: f64,
}

impl Cell {
    /// The cell's stable identity: the job id on the wire, and the
    /// stream every cell-local seed derives from.
    pub(crate) fn key(&self) -> String {
        format!("{}[{}]@{}", self.family, self.entry_index, self.rate)
    }

    /// The canonical tenant key a schedule server would resolve for
    /// this cell — the namespace sweeps, servers and registries share.
    pub(crate) fn tenant(&self, config: &SweepConfig) -> String {
        let code_ref = CodeRef { family: self.family.to_string(), index: self.entry_index };
        TenantMap::canonical_key(&code_ref, &NoiseSpec::Scaled(self.rate), config.shots)
    }

    /// Per-strategy evaluation grant for this cell's code.
    pub(crate) fn grant(&self, config: &SweepConfig) -> u64 {
        let total_checks: u64 =
            self.entry.code.stabilizers().iter().map(|s| s.weight() as u64).sum();
        (total_checks + 2) * config.budget_multiplier
    }

    /// The v2 job request a fleet coordinator ships for this cell,
    /// optionally carrying a warm-start seed from its registry. The
    /// request reproduces the in-process race exactly: same portfolio
    /// seed (derived from the cell key), same per-strategy grant
    /// (`budget` is the grant re-multiplied by the portfolio's party
    /// count, which the server's `split_grant` divides back), same
    /// shots — so a remote worker and a local rayon worker return
    /// bit-identical results.
    pub(crate) fn request(
        &self,
        config: &SweepConfig,
        warm_seed: Option<Box<ScheduleArtifact>>,
    ) -> JobRequest {
        let key = self.key();
        JobRequest {
            id: key.clone(),
            code: CodeRef { family: self.family.to_string(), index: self.entry_index },
            noise: NoiseSpec::Scaled(self.rate),
            strategy: StrategyChoice::Portfolio,
            budget: self.grant(config) * StrategyChoice::Portfolio.parties() as u64,
            shots: config.shots,
            seed: mix_seed(config.seed, fnv64(key.as_bytes())),
            warm_seed,
        }
    }
}

/// A catalog sweep being configured: the grid plus optional extras,
/// resolved by [`SweepOptions::run`].
///
/// ```no_run
/// use asynd_server::sweep::{SweepConfig, SweepOptions};
///
/// // The CI smoke grid, distributed over two workers.
/// let report = SweepOptions::with_config(SweepConfig::smoke())
///     .fleet(["127.0.0.1:7271", "127.0.0.1:7272"])
///     .run()
///     .unwrap();
/// # let _ = report;
/// ```
pub struct SweepOptions<'a> {
    config: SweepConfig,
    registry: Option<&'a Registry>,
    workers: Vec<String>,
}

impl Default for SweepOptions<'_> {
    fn default() -> Self {
        SweepOptions::new()
    }
}

impl<'a> SweepOptions<'a> {
    /// The standard sweep grid with no extras.
    pub fn new() -> SweepOptions<'a> {
        SweepOptions::with_config(SweepConfig::standard())
    }

    /// The CI smoke grid with no extras.
    pub fn smoke() -> SweepOptions<'a> {
        SweepOptions::with_config(SweepConfig::smoke())
    }

    /// A sweep over an explicit grid config.
    pub fn with_config(config: SweepConfig) -> SweepOptions<'a> {
        SweepOptions { config, registry: None, workers: Vec::new() }
    }

    /// The grid this sweep will run.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Attaches a persistent schedule registry. Every cell resolves the
    /// same canonical tenant key the schedule server would
    /// (`family[index]|scaled(rate)|shots=N`), warm-starts its race
    /// from the registry's best artifact for that tenant, and stores
    /// its winner back — so repeated sweeps over one registry directory
    /// reuse each other's work, and sweep artifacts are interchangeable
    /// with server-produced ones. Within one sweep all cells are
    /// distinct tenants, so the records stay bit-identical for any
    /// worker count given the registry state at sweep start.
    pub fn registry(mut self, registry: &'a Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Distributes cells to remote `asynd serve` workers at these
    /// addresses instead of local rayon workers (empty = stay local).
    /// See [`crate::fleet`] for the coordinator's contract.
    pub fn fleet(mut self, workers: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.workers = workers.into_iter().map(Into::into).collect();
        self
    }

    /// Local worker-thread cap for the rayon fan-out (`0` = rayon's
    /// parallelism). Ignored when a fleet is attached.
    pub fn local_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Runs the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::Rejected`] for an empty grid or unknown
    /// family filters, and propagates the first cell failure (in
    /// deterministic cell order). A fleet run fails only when *every*
    /// worker dies and the local fallback fails too.
    pub fn run(&self) -> Result<SweepReport, ServerError> {
        let cells = enumerate_cells(&self.config)?;
        if self.workers.is_empty() {
            run_local(&self.config, &cells, self.registry)
        } else {
            crate::fleet::run_fleet(&self.config, &cells, self.registry, &self.workers)
        }
    }
}

/// Runs a catalog sweep without a registry.
///
/// # Errors
///
/// As [`SweepOptions::run`].
#[deprecated(note = "use `SweepOptions::with_config(config.clone()).run()`")]
pub fn run_sweep(config: &SweepConfig) -> Result<SweepReport, ServerError> {
    SweepOptions::with_config(config.clone()).run()
}

/// Runs a catalog sweep, optionally against a persistent schedule
/// registry.
///
/// # Errors
///
/// As [`SweepOptions::run`].
#[deprecated(note = "use `SweepOptions::with_config(config.clone()).registry(registry).run()`")]
pub fn run_sweep_with_registry(
    config: &SweepConfig,
    registry: Option<&Registry>,
) -> Result<SweepReport, ServerError> {
    let options = SweepOptions::with_config(config.clone());
    let options = match registry {
        Some(registry) => options.registry(registry),
        None => options,
    };
    options.run()
}

/// Expands a sweep config into its deterministic cell list (family
/// order × entry order × rate order), validating the grid.
pub(crate) fn enumerate_cells(config: &SweepConfig) -> Result<Vec<Cell>, ServerError> {
    if config.error_rates.is_empty() {
        return Err(ServerError::Rejected { reason: "sweep needs at least one error rate".into() });
    }
    if config.budget_multiplier == 0 || config.shots == 0 {
        return Err(ServerError::Rejected {
            reason: "budget multiplier and shots must be positive".into(),
        });
    }
    let catalog = families();
    let selected: Vec<_> = if config.families.is_empty() {
        catalog
    } else {
        for name in &config.families {
            if !catalog.iter().any(|family| family.name == *name) {
                return Err(ServerError::Rejected {
                    reason: format!("unknown sweep family {name:?}"),
                });
            }
        }
        catalog
            .into_iter()
            .filter(|family| config.families.iter().any(|name| name == family.name))
            .collect()
    };

    let mut cells = Vec::new();
    for family in &selected {
        let take =
            if config.entries_per_family == 0 { usize::MAX } else { config.entries_per_family };
        for (entry_index, entry) in family.entries_within(config.max_qubits).take(take).enumerate()
        {
            for &rate in &config.error_rates {
                cells.push(Cell { family: family.name, entry: entry.clone(), entry_index, rate });
            }
        }
    }
    if cells.is_empty() {
        return Err(ServerError::Rejected {
            reason: format!("no catalog code passes the max_qubits={} filter", config.max_qubits),
        });
    }
    Ok(cells)
}

/// The local fan-out: cells over rayon with the worker-loop pattern.
fn run_local(
    config: &SweepConfig,
    cells: &[Cell],
    registry: Option<&Registry>,
) -> Result<SweepReport, ServerError> {
    // Each cell is pure given its derived seed, so any worker count
    // produces identical records.
    let telemetry = SweepTelemetry::resolve();
    let slots: Vec<CellSlot> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = match config.workers {
        0 => rayon::current_num_threads().min(cells.len()).max(1),
        n => n.min(cells.len()).max(1),
    };
    rayon::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= cells.len() {
                    break;
                }
                let result = run_cell(config, &cells[index], registry, &telemetry);
                *slots[index].lock().expect("sweep slot poisoned") = Some(result);
            });
        }
    });
    assemble_report(config, cells, slots)
}

/// Assembles the final report from filled cell slots, in deterministic
/// cell order — the single merge path shared by the local fan-out and
/// the fleet coordinator, which is what makes the merged report
/// independent of worker count, topology and arrival order.
pub(crate) fn assemble_report(
    config: &SweepConfig,
    cells: &[Cell],
    slots: Vec<CellSlot>,
) -> Result<SweepReport, ServerError> {
    let mut records = Vec::with_capacity(cells.len() * 4);
    let mut phases = Vec::with_capacity(cells.len());
    let mut warm_cells = 0usize;
    let mut stored = 0usize;
    for (cell, slot) in cells.iter().zip(slots) {
        let outcome =
            slot.into_inner().expect("sweep slot poisoned").expect("every cell slot is filled")?;
        phases.push(CellPhases {
            family: cell.family.to_string(),
            code: cell.entry.display_label(),
            error_rate: cell.rate,
            lookup_ms: outcome.lookup_ms,
            race_ms: outcome.race_ms,
            store_ms: outcome.store_ms,
            wall_ms: outcome.wall_ms,
        });
        records.extend(outcome.records);
        warm_cells += usize::from(outcome.warm_start);
        stored += usize::from(outcome.stored);
    }
    let mut codes: Vec<String> = records.iter().map(|r| r.code.clone()).collect();
    codes.sort_unstable();
    codes.dedup();
    Ok(SweepReport {
        records,
        phases,
        codes: codes.len(),
        rates: config.error_rates.len(),
        cells: cells.len(),
        warm_cells,
        stored,
    })
}

pub(crate) fn run_cell(
    config: &SweepConfig,
    cell: &Cell,
    registry: Option<&Registry>,
    telemetry: &SweepTelemetry,
) -> Result<CellOutcome, ServerError> {
    let cell_started = Instant::now();
    let code = &cell.entry.code;
    let cell_key = cell.key();
    let portfolio = Portfolio::standard(PortfolioConfig {
        seed: mix_seed(config.seed, fnv64(cell_key.as_bytes())),
        budget_per_strategy: cell.grant(config),
        shots_per_evaluation: config.shots,
        // Cells are the parallel unit; inside a cell the race runs on one
        // worker to avoid oversubscribing the sweep pool.
        worker_threads: 1,
        ..PortfolioConfig::default()
    });
    let spec = NoiseSpec::Scaled(cell.rate);
    let noise = spec.to_model()?;

    // The cell's tenant identity matches what the schedule server would
    // resolve for this (code, rate, shots), so sweeps and servers share
    // one registry namespace.
    let tenant = cell.tenant(config);
    let lookup_started = Instant::now();
    let seeds: Vec<Schedule> = registry
        .and_then(|r| r.lookup(&tenant))
        .filter(|entry| entry.artifact.schedule.validate(code).is_ok())
        .map(|entry| vec![entry.artifact.schedule])
        .unwrap_or_default();
    // Without a registry there is no lookup phase — the breakdown
    // reports 0 rather than the cost of the no-op closure above.
    let lookup_elapsed =
        if registry.is_some() { lookup_started.elapsed() } else { std::time::Duration::ZERO };
    if registry.is_some() {
        telemetry.lookup_us.record_duration(lookup_elapsed);
    }
    let warm_start = !seeds.is_empty();

    // The cell races over a fresh evaluator under its *tenant's* salt —
    // the same evaluation-seed stream a schedule server would use for
    // this (code, rate, shots) — so a cell's records are bit-identical
    // whether it runs here or on a fleet worker's fresh tenant.
    let options = EstimateOptions { max_threads: Some(1), ..EstimateOptions::default() };
    let evaluator = Arc::new(Evaluator::with_capacity(
        noise.clone(),
        factory_for(cell.entry.decoder),
        config.shots,
        options,
        DEFAULT_CACHE_CAPACITY,
    ));
    let race_started = Instant::now();
    let report = portfolio.run_with_seeds(code, evaluator, tenant_salt(&tenant), &seeds)?;
    let race_elapsed = race_started.elapsed();
    telemetry.race_us.record_duration(race_elapsed);

    let mut stored = false;
    let mut store_elapsed = std::time::Duration::ZERO;
    if let Some(registry) = registry {
        let winning = report.winning();
        let artifact = ScheduleArtifact {
            code_label: cell.entry.display_label(),
            schedule: winning.outcome.schedule.clone(),
            estimate: winning.outcome.estimate,
        };
        let store_started = Instant::now();
        match registry.store(&tenant, &artifact) {
            Ok(outcome) => stored = outcome != asynd_registry::StoreOutcome::Duplicate,
            Err(e) => eprintln!("asynd: registry store failed for {tenant}: {e}"),
        }
        store_elapsed = store_started.elapsed();
        telemetry.store_us.record_duration(store_elapsed);
    }

    let records = report
        .strategies
        .iter()
        .enumerate()
        .map(|(index, s)| SweepRecord {
            family: cell.family.to_string(),
            code: cell.entry.display_label(),
            error_rate: cell.rate,
            strategy: s.name.clone(),
            wall_ms: s.wall.as_secs_f64() * 1e3,
            p_overall: s.outcome.estimate.p_overall(),
            depth: s.outcome.schedule.depth(),
            schedule_key: s.outcome.schedule.key().to_hex(),
            evaluations: s.metered,
            cache_hit_rate: report.evaluator.hit_rate(),
            winner: index == report.winner,
            warm_start,
        })
        .collect();
    let wall_elapsed = cell_started.elapsed();
    telemetry.cell_wall_us.record_duration(wall_elapsed);
    Ok(CellOutcome {
        records,
        warm_start,
        stored,
        lookup_ms: lookup_elapsed.as_secs_f64() * 1e3,
        race_ms: race_elapsed.as_secs_f64() * 1e3,
        store_ms: store_elapsed.as_secs_f64() * 1e3,
        wall_ms: wall_elapsed.as_secs_f64() * 1e3,
    })
}

/// Builds a cell's outcome from a fleet worker's job response. The
/// per-strategy records carry the wire's summaries verbatim; wall-clock
/// members the wire does not carry per strategy report `0` (they are
/// observability data outside the determinism contract, zeroed anyway
/// by [`canonical_report_value`]).
pub(crate) fn outcome_from_job(
    cell: &Cell,
    job: &JobOutcome,
    lookup_ms: f64,
    store_ms: f64,
    stored: bool,
    wall_ms: f64,
) -> CellOutcome {
    let records = job
        .strategies
        .iter()
        .map(|s| SweepRecord {
            family: cell.family.to_string(),
            code: cell.entry.display_label(),
            error_rate: cell.rate,
            strategy: s.name.clone(),
            wall_ms: 0.0,
            p_overall: s.p_overall,
            depth: s.depth,
            schedule_key: s.key.clone(),
            evaluations: s.evaluations,
            cache_hit_rate: job.cache.hit_rate(),
            winner: s.winner,
            warm_start: job.warm_start,
        })
        .collect();
    CellOutcome {
        records,
        warm_start: job.warm_start,
        stored,
        lookup_ms,
        race_ms: job.wall_ms,
        store_ms,
        wall_ms,
    }
}

/// The canonical (timing-free) form of a sweep report document: the
/// `phases` array dropped and every record's `wall_ms` zeroed. Two
/// sweep runs are equivalent iff their canonical forms are equal — the
/// determinism contract for any local worker count or fleet topology
/// (wall-clock is the *only* member allowed to differ).
pub fn canonical_report_value(doc: &Value) -> Value {
    let Some(object) = doc.as_object() else { return doc.clone() };
    let mut out = Map::new();
    for (key, value) in object.iter() {
        match key.as_str() {
            "phases" => {}
            "records" => {
                let records = value
                    .as_array()
                    .map(|records| {
                        records
                            .iter()
                            .map(|record| match record.as_object() {
                                Some(record) => {
                                    let mut clean = Map::new();
                                    for (member, v) in record.iter() {
                                        if member == "wall_ms" {
                                            clean.insert("wall_ms", Value::from(0.0));
                                        } else {
                                            clean.insert(member.as_str(), v.clone());
                                        }
                                    }
                                    Value::Object(clean)
                                }
                                None => record.clone(),
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                out.insert("records", Value::Array(records));
            }
            _ => drop(out.insert(key.as_str(), value.clone())),
        }
    }
    Value::Object(out)
}

/// Summary returned by [`validate_report_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportSummary {
    /// Records in the document.
    pub records: usize,
    /// Distinct code labels.
    pub codes: usize,
    /// Distinct strategies.
    pub strategies: usize,
}

/// Validates a `BENCH_*.json` trajectory document (the Rust replacement
/// for eyeballing with `jq`): the envelope must carry `generated_by` and
/// a non-empty `records` array, and every record must have well-typed
/// members with probabilities in range. Sweep-only members
/// (`error_rate`, `schedule_key`, the per-cell `phases` array, …) are
/// checked when present.
///
/// # Errors
///
/// Returns [`ServerError::Protocol`] naming the first violation.
pub fn validate_report_text(text: &str) -> Result<ReportSummary, ServerError> {
    let bad = |reason: String| ServerError::Protocol { reason };
    let doc =
        serde_json::from_str(text).map_err(|e| bad(format!("report is not valid JSON: {e}")))?;
    doc.get("generated_by")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("report lacks a `generated_by` string".into()))?;
    let records = doc
        .get("records")
        .and_then(Value::as_array)
        .ok_or_else(|| bad("report lacks a `records` array".into()))?;
    if records.is_empty() {
        return Err(bad("report has zero records".into()));
    }
    let mut codes: Vec<&str> = Vec::new();
    let mut strategies: Vec<&str> = Vec::new();
    for (index, record) in records.iter().enumerate() {
        let context = |member: &str, problem: &str| {
            bad(format!("record {index}: member `{member}` {problem}"))
        };
        let code = record
            .get("code")
            .and_then(Value::as_str)
            .ok_or_else(|| context("code", "must be a string"))?;
        let strategy = record
            .get("strategy")
            .and_then(Value::as_str)
            .ok_or_else(|| context("strategy", "must be a string"))?;
        codes.push(code);
        strategies.push(strategy);
        for member in ["p_overall", "cache_hit_rate"] {
            let p = record
                .get(member)
                .and_then(Value::as_f64)
                .ok_or_else(|| context(member, "must be a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(context(member, "must be a probability in [0, 1]"));
            }
        }
        let wall = record
            .get("wall_ms")
            .and_then(Value::as_f64)
            .ok_or_else(|| context("wall_ms", "must be a number"))?;
        if wall < 0.0 {
            return Err(context("wall_ms", "must be non-negative"));
        }
        record
            .get("evaluations")
            .and_then(Value::as_u64)
            .ok_or_else(|| context("evaluations", "must be a non-negative integer"))?;
        record
            .get("winner")
            .and_then(Value::as_bool)
            .ok_or_else(|| context("winner", "must be a boolean"))?;
        if let Some(rate) = record.get("error_rate") {
            let rate = rate.as_f64().ok_or_else(|| context("error_rate", "must be a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(context("error_rate", "must be a probability in [0, 1]"));
            }
        }
        if let Some(key) = record.get("schedule_key") {
            let key = key.as_str().ok_or_else(|| context("schedule_key", "must be a string"))?;
            if asynd_circuit::ScheduleKey::from_hex(key).is_none() {
                return Err(context("schedule_key", "must be 32 hex digits"));
            }
        }
        // Decoder-bench members (`BENCH_decoders.json`): the decode path
        // tag and the per-phase timing split.
        if let Some(path) = record.get("path") {
            let path = path.as_str().ok_or_else(|| context("path", "must be a string"))?;
            if path != "scalar" && path != "word-parallel" {
                return Err(context("path", "must be `scalar` or `word-parallel`"));
            }
        }
        if let Some(shots) = record.get("shots") {
            let shots =
                shots.as_u64().ok_or_else(|| context("shots", "must be a non-negative integer"))?;
            if shots == 0 {
                return Err(context("shots", "must be positive"));
            }
        }
        for member in ["sample_ms", "decode_ms", "score_ms"] {
            if let Some(timing) = record.get(member) {
                let timing = timing.as_f64().ok_or_else(|| context(member, "must be a number"))?;
                if timing < 0.0 {
                    return Err(context(member, "must be non-negative"));
                }
            }
        }
    }
    if let Some(phases) = doc.get("phases") {
        let phases =
            phases.as_array().ok_or_else(|| bad("member `phases` must be an array".into()))?;
        for (index, entry) in phases.iter().enumerate() {
            // Two phase-entry shapes exist: sweep-cell timings
            // (lookup/race/store) and estimation-pipeline timings
            // (sample/decode/score). Either trio must be complete, and
            // `wall_ms` is always required.
            let members: &[&str] = if entry.get("sample_ms").is_some() {
                &["sample_ms", "decode_ms", "score_ms", "wall_ms"]
            } else {
                &["lookup_ms", "race_ms", "store_ms", "wall_ms"]
            };
            for member in members {
                let timing = entry.get(member).and_then(Value::as_f64).ok_or_else(|| {
                    bad(format!("phase entry {index}: member `{member}` must be a number"))
                })?;
                if timing < 0.0 {
                    return Err(bad(format!(
                        "phase entry {index}: member `{member}` must be non-negative"
                    )));
                }
            }
        }
    }
    codes.sort_unstable();
    codes.dedup();
    strategies.sort_unstable();
    strategies.dedup();
    Ok(ReportSummary { records: records.len(), codes: codes.len(), strategies: strategies.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SweepConfig {
        SweepConfig {
            seed: 11,
            error_rates: vec![3e-3, 7.4e-3],
            families: vec!["rotated-surface".into(), "hexagonal-color".into()],
            max_qubits: 9,
            entries_per_family: 1,
            budget_multiplier: 1,
            shots: 120,
            workers: 0,
        }
    }

    #[test]
    fn tiny_sweep_covers_the_grid_and_validates() {
        let config = tiny_config();
        let report = SweepOptions::with_config(config.clone()).run().unwrap();
        // 2 families × 1 entry × 2 rates × 4 strategies.
        assert_eq!(report.records.len(), 16);
        assert_eq!(report.rates, 2);
        assert_eq!(report.codes, 2);
        assert_eq!(report.records.iter().filter(|r| r.winner).count(), 4, "one winner per cell");
        assert_eq!(report.phases.len(), report.cells, "one phase breakdown per cell");
        for phases in &report.phases {
            assert!(phases.wall_ms > 0.0, "cell wall-time is elapsed, not zero");
            assert!(phases.race_ms <= phases.wall_ms, "the race is part of the cell's wall");
            assert_eq!(phases.lookup_ms, 0.0, "no registry, no lookup time");
        }
        let text = serde_json::to_string_pretty(&report.to_json(&config)).unwrap();
        let summary = validate_report_text(&text).unwrap();
        assert_eq!(summary.records, 16);
        assert_eq!(summary.codes, 2);
        assert_eq!(summary.strategies, 4);
        assert!(report.render_table().lines().count() >= 5);
    }

    #[test]
    fn unknown_family_filter_is_rejected() {
        let config = SweepConfig {
            families: vec!["surface".into()], // registry name is rotated-surface
            ..tiny_config()
        };
        assert!(matches!(
            SweepOptions::with_config(config).run(),
            Err(ServerError::Rejected { .. })
        ));
    }

    #[test]
    fn impossible_filters_are_rejected() {
        let config = SweepConfig { max_qubits: 1, ..tiny_config() };
        assert!(matches!(
            SweepOptions::with_config(config).run(),
            Err(ServerError::Rejected { .. })
        ));
        let config = SweepConfig { error_rates: vec![], ..tiny_config() };
        assert!(matches!(
            SweepOptions::with_config(config).run(),
            Err(ServerError::Rejected { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_run_a_sweep() {
        // One release of back-compat: the free functions must keep
        // producing the same report as the builder they forward to.
        let config = tiny_config();
        let via_shim = run_sweep(&config).unwrap();
        let via_builder = SweepOptions::with_config(config.clone()).run().unwrap();
        assert_eq!(
            canonical_report_value(&via_shim.to_json(&config)),
            canonical_report_value(&via_builder.to_json(&config)),
        );
    }

    #[test]
    fn canonical_form_strips_wall_clock_but_nothing_else() {
        let config = tiny_config();
        let report = SweepOptions::with_config(config.clone()).run().unwrap();
        let doc = report.to_json(&config);
        let canonical = canonical_report_value(&doc);
        assert!(canonical.get("phases").is_none(), "phase timings are observability data");
        let records = canonical.get("records").and_then(Value::as_array).unwrap();
        assert_eq!(records.len(), report.records.len());
        for record in records {
            assert_eq!(record.get("wall_ms").and_then(Value::as_f64), Some(0.0));
            assert!(record.get("p_overall").is_some(), "result members survive");
            assert!(record.get("schedule_key").is_some());
        }
        // Canonicalisation is idempotent and insensitive to wall noise.
        assert_eq!(canonical_report_value(&canonical), canonical);
        let mut noisy = report;
        for record in &mut noisy.records {
            record.wall_ms += 123.456;
        }
        assert_eq!(canonical_report_value(&noisy.to_json(&config)), canonical);
    }

    #[test]
    fn validator_rejects_malformed_reports() {
        for (doc, needle) in [
            ("{}", "generated_by"),
            (r#"{"generated_by":"x"}"#, "records"),
            (r#"{"generated_by":"x","records":[]}"#, "zero records"),
            (r#"{"generated_by":"x","records":[{"code":"c"}]}"#, "strategy"),
            (
                r#"{"generated_by":"x","records":[{"code":"c","strategy":"s","p_overall":1.5,"cache_hit_rate":0,"wall_ms":1,"evaluations":1,"winner":true}]}"#,
                "probability",
            ),
            (
                r#"{"generated_by":"x","records":[{"code":"c","strategy":"s","p_overall":0.5,"cache_hit_rate":0,"wall_ms":1,"evaluations":1,"winner":true,"schedule_key":"zz"}]}"#,
                "hex",
            ),
            (
                r#"{"generated_by":"x","records":[{"code":"c","strategy":"s","p_overall":0.5,"cache_hit_rate":0,"wall_ms":1,"evaluations":1,"winner":true}],"phases":[{"lookup_ms":-1,"race_ms":0,"store_ms":0,"wall_ms":1}]}"#,
                "non-negative",
            ),
            (
                r#"{"generated_by":"x","records":[{"code":"c","strategy":"s","p_overall":0.5,"cache_hit_rate":0,"wall_ms":1,"evaluations":1,"winner":true,"path":"sideways"}]}"#,
                "word-parallel",
            ),
            (
                r#"{"generated_by":"x","records":[{"code":"c","strategy":"s","p_overall":0.5,"cache_hit_rate":0,"wall_ms":1,"evaluations":1,"winner":true,"shots":0}]}"#,
                "positive",
            ),
            (
                r#"{"generated_by":"x","records":[{"code":"c","strategy":"s","p_overall":0.5,"cache_hit_rate":0,"wall_ms":1,"evaluations":1,"winner":true,"decode_ms":-2}]}"#,
                "non-negative",
            ),
            (
                r#"{"generated_by":"x","records":[{"code":"c","strategy":"s","p_overall":0.5,"cache_hit_rate":0,"wall_ms":1,"evaluations":1,"winner":true}],"phases":[{"sample_ms":1,"decode_ms":2,"wall_ms":3}]}"#,
                "score_ms",
            ),
        ] {
            let err = validate_report_text(doc).unwrap_err();
            assert!(err.to_string().contains(needle), "{err} lacks {needle:?}");
        }
    }

    #[test]
    fn validator_accepts_decoder_bench_reports() {
        // The shape `cargo bench --bench decoders` emits: decode-phase
        // record members plus a sample/decode/score phases array.
        let text = r#"{
            "generated_by": "cargo bench -p asynd-bench --bench decoders",
            "records": [
                {"code": "surface-d5", "strategy": "unionfind/scalar", "decoder": "unionfind",
                 "path": "scalar", "shots": 1024, "wall_ms": 274.55,
                 "sample_ms": 0.0, "decode_ms": 0.0, "score_ms": 0.0,
                 "p_overall": 0.052, "cache_hit_rate": 0.0, "evaluations": 1024, "winner": false},
                {"code": "surface-d5", "strategy": "unionfind/word-parallel", "decoder": "unionfind",
                 "path": "word-parallel", "shots": 1024, "wall_ms": 70.1,
                 "sample_ms": 4.2, "decode_ms": 61.4, "score_ms": 0.8,
                 "p_overall": 0.052, "cache_hit_rate": 0.0, "evaluations": 1024, "winner": true}
            ],
            "phases": [
                {"code": "surface-d5", "sample_ms": 4.2, "decode_ms": 61.4, "score_ms": 0.8, "wall_ms": 70.1}
            ]
        }"#;
        let summary = validate_report_text(text).unwrap();
        assert_eq!(summary.records, 2);
        assert_eq!(summary.codes, 1);
        assert_eq!(summary.strategies, 2);
    }
}

//! The synthesis serving layer: a multi-tenant schedule server, a
//! JSON-lines protocol, and catalog-wide scenario sweeps.
//!
//! Everything below the portfolio racer is a library; this crate turns it
//! into a *service*:
//!
//! * [`ScheduleServer`] — a bounded job queue drained by a worker thread
//!   pool (std threads; no async runtime — the deployment target is
//!   offline). Each job synthesizes a schedule for one catalog code under
//!   one error model, racing the [`asynd_portfolio::Portfolio`] engine
//!   over a shared per-tenant evaluator.
//! * [`TenantMap`] — one [`asynd_circuit::Evaluator`] per
//!   `(code, error model, shots)` tenant. Jobs of the same tenant share
//!   the memoisation cache; the tenant's evaluation-seed salt is derived
//!   from the tenant key, so cached estimates are a pure function of the
//!   schedule no matter which job or worker computed them first.
//! * [`protocol`] — the JSON-lines request/response wire format, spoken
//!   over stdin/stdout ([`serve_lines`]) and `std::net` TCP
//!   ([`serve_tcp`], `asynd serve --tcp`).
//! * [`sweep`] — the catalog-wide scenario runner behind `asynd sweep`:
//!   every registered code family × an error-rate grid, fanned out over
//!   rayon, emitting a machine-readable `BENCH_sweep.json`.
//! * Registry integration — started with
//!   [`ScheduleServer::start_with_registry`], the server consults a
//!   persistent [`asynd_registry::Registry`] before synthesis (jobs
//!   warm-start from their tenant's best stored artifact), stores
//!   winners after, and answers the `lookup` protocol op from it without
//!   spending any evaluation budget. Sweeps share the same tenant
//!   namespace via [`sweep::run_sweep_with_registry`].
//!
//! # Determinism contract
//!
//! A job's result — the winning schedule (by canonical key), its estimate,
//! and the budget accounting — is a pure function of the job request and
//! its tenant key. The server guarantees **bit-identical results for any
//! worker-thread count**: per-tenant evaluation seeds are derived from
//! schedule keys (so cache racing is value-neutral, see
//! [`asynd_portfolio`]), strategy RNG streams are derived from the job
//! seed, and responses are emitted in submission order. Wall-clock and
//! cache-counter members of a response are observability data outside the
//! contract.
//!
//! # Example
//!
//! ```no_run
//! use asynd_server::{protocol, ScheduleServer, ServerConfig};
//!
//! let server = ScheduleServer::start(ServerConfig::default());
//! let request = protocol::JobRequest {
//!     id: "job-1".into(),
//!     code: protocol::CodeRef { family: "rotated-surface".into(), index: 0 },
//!     noise: protocol::NoiseSpec::Brisbane,
//!     strategy: protocol::StrategyChoice::Portfolio,
//!     budget: 128,
//!     shots: 400,
//!     seed: 7,
//!     warm_seed: None,
//! };
//! let handle = server.submit(request).unwrap();
//! println!("{}", handle.wait().to_json());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod fleet;
pub mod loadgen;
pub mod protocol;
mod queue;
pub mod reactor;
mod server;
pub mod sweep;
mod tenants;

pub use client::{Client, ClientError, ClientOptions, MetricsClient, WireProtocol};
pub use queue::{BoundedQueue, ShardedQueue, WakeupStats};
pub use reactor::{serve_tcp_with, ReactorOptions};
pub use server::{serve_lines, serve_tcp, JobHandle, ScheduleServer, ServerConfig};
pub use tenants::{tenant_salt, Tenant, TenantMap};

use std::fmt;

use asynd_core::SchedulerError;

/// Errors of the serving layer.
#[derive(Debug)]
pub enum ServerError {
    /// A request line or report document violated the wire format.
    Protocol {
        /// What was malformed.
        reason: String,
    },
    /// A structurally valid request the server refuses to run (unknown
    /// family, out-of-range index, oversized budget, full queue).
    Rejected {
        /// Why the job was refused.
        reason: String,
    },
    /// Synthesis itself failed.
    Scheduler(SchedulerError),
    /// An I/O failure (socket or report file).
    Io(std::io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            ServerError::Rejected { reason } => write!(f, "job rejected: {reason}"),
            ServerError::Scheduler(e) => write!(f, "synthesis failed: {e}"),
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Scheduler(e) => Some(e),
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedulerError> for ServerError {
    fn from(e: SchedulerError) -> Self {
        ServerError::Scheduler(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock.
///
/// The serving layer's shared state (connection tables, worker pools,
/// metrics) stays structurally valid even if a holder panicked: every
/// mutation is a single insert/remove/increment, never a multi-step
/// invariant. Propagating poison would turn one worker's panic into a
/// reactor-wide crash, which is strictly worse for availability.
pub(crate) fn lock_unpoisoned<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// FNV-1a over a byte string (the serving layer's deterministic
/// key-to-seed derivation; decorrelated from schedule fingerprints by the
/// domain constant mixed in by callers).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

//! The serving-layer load generator behind `asynd loadgen`: a
//! single-threaded client event loop that drives hundreds to thousands
//! of concurrent connections against a live `asynd serve --tcp` reactor
//! and measures per-request latency and aggregate throughput.
//!
//! Two injection modes:
//!
//! * **closed-loop** — every connection keeps a fixed number of requests
//!   outstanding (`pipeline`) and fires the next one the moment a
//!   response lands, until its per-connection quota is spent. Measures
//!   the server's capacity under self-throttling clients.
//! * **open-loop** — requests are injected on a wall-clock schedule at a
//!   target aggregate rate, regardless of responses. Latency then
//!   includes queueing delay, which is what a real arrival process sees
//!   (the coordinated-omission-free number).
//!
//! Each stage of the `connections` ramp opens a fresh set of
//! connections, runs one measurement, and reports exact percentiles
//! computed from every recorded sample — no reservoir, no
//! interpolation. Results serialize into the tracked
//! `BENCH_serving.json` (`kind: "serving"`), which `asynd validate`
//! checks structurally.
//!
//! The generator speaks both wire protocols: v1 JSON lines (responses
//! matched to requests in submission order, as the protocol guarantees)
//! and framed v2 (synthesize responses matched by job id; probes by
//! order). It reuses the same [`asynd_net`] primitives as the server's
//! reactor, so a stage with 1000+ connections still runs on one thread
//! and one `poll(2)` set.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use asynd_net::{Connection, Interest, PollSet};
use serde_json::{Map, Value};

pub use crate::client::WireProtocol;
use crate::client::{encode_request, Correlation, Correlator, ResponseStream, WireEvent};

/// Request injection discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Keep `pipeline` requests outstanding per connection; each
    /// connection sends `requests_per_conn` requests total.
    Closed {
        /// Outstanding requests per connection.
        pipeline: usize,
    },
    /// Inject at `rate_rps` aggregate requests/second for the stage
    /// duration, round-robin across connections, regardless of
    /// responses.
    Open {
        /// Target aggregate injection rate (requests per second).
        rate_rps: f64,
    },
}

impl Mode {
    /// The tag recorded in benchmark records.
    pub fn tag(self) -> &'static str {
        match self {
            Mode::Closed { .. } => "closed",
            Mode::Open { .. } => "open",
        }
    }
}

/// What each request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// `{"op":"ping"}` probes: measures the serving layer itself
    /// (parsing, event loop, scheduling) with no synthesis behind it.
    Ping,
    /// Small synthesize jobs (lowest-depth strategy, shared tenant):
    /// measures the full request→queue→worker→response path.
    Synthesize,
}

impl Workload {
    /// The tag recorded in benchmark records.
    pub fn tag(self) -> &'static str {
        match self {
            Workload::Ping => "ping",
            Workload::Synthesize => "synthesize",
        }
    }
}

/// One load-generation run: a ramp of stages over `connections`.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Connection counts, one measurement stage each.
    pub connections: Vec<usize>,
    /// Injection discipline.
    pub mode: Mode,
    /// Wire protocol.
    pub protocol: WireProtocol,
    /// Request workload.
    pub workload: Workload,
    /// Closed-loop: requests per connection per stage.
    pub requests_per_conn: usize,
    /// Open-loop: stage duration. Also the closed-loop safety cap — a
    /// stage that exceeds twice this duration stops and reports what it
    /// has.
    pub duration: Duration,
    /// How long to wait for outstanding responses after injection ends.
    pub drain: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7070".to_string(),
            connections: vec![10, 100, 1000],
            mode: Mode::Closed { pipeline: 1 },
            protocol: WireProtocol::V1,
            workload: Workload::Ping,
            requests_per_conn: 50,
            duration: Duration::from_secs(10),
            drain: Duration::from_secs(10),
        }
    }
}

/// One measured ramp stage.
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Connections the stage ran with.
    pub connections: usize,
    /// Injection mode tag (`open`/`closed`).
    pub mode: String,
    /// Wire protocol tag (`v1`/`v2`).
    pub protocol: String,
    /// Workload tag (`ping`/`synthesize`).
    pub workload: String,
    /// Responses successfully received and timed.
    pub requests: u64,
    /// Error responses, parse failures, dead connections and
    /// still-outstanding requests at drain timeout.
    pub errors: u64,
    /// Stage wall time (first injection to last response), seconds.
    pub duration_s: f64,
    /// Aggregate responses/second over the stage.
    pub throughput_rps: f64,
    /// Exact latency percentiles over every sample, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

/// Client-side state of one loadgen connection.
struct ClientConn {
    io: Connection,
    /// Protocol-aware response splitter (shared with [`crate::client`]).
    events: ResponseStream,
    /// Send timestamps of requests awaiting responses (id-matched for
    /// v2 synthesize, in submission order for everything else).
    pending: Correlator<Instant>,
    /// Requests this connection has injected.
    sent: u64,
    /// Responses still owed.
    outstanding: u64,
    /// Transport died; excluded from further polling.
    broken: bool,
}

impl ClientConn {
    fn connect(addr: &str, protocol: WireProtocol) -> Result<ClientConn, String> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("loadgen: cannot connect to {addr}: {e}"))?;
        let io = Connection::new(stream)
            .map_err(|e| format!("loadgen: cannot prepare connection: {e}"))?;
        Ok(ClientConn {
            io,
            events: ResponseStream::new(protocol),
            pending: Correlator::new(),
            sent: 0,
            outstanding: 0,
            broken: false,
        })
    }
}

/// Runs the full ramp. Stages run sequentially; each opens its own
/// connections and closes them when done.
///
/// # Errors
///
/// Returns an error when a stage cannot open its connections; per
/// request failures are counted in [`StageResult::errors`] instead.
pub fn run(config: &LoadgenConfig) -> Result<Vec<StageResult>, String> {
    let mut results = Vec::with_capacity(config.connections.len());
    for &connections in &config.connections {
        if connections == 0 {
            return Err("loadgen: stages need at least one connection".to_string());
        }
        results.push(run_stage(config, connections)?);
    }
    Ok(results)
}

fn run_stage(config: &LoadgenConfig, connections: usize) -> Result<StageResult, String> {
    let mut conns = Vec::with_capacity(connections);
    for _ in 0..connections {
        conns.push(ClientConn::connect(&config.addr, config.protocol)?);
    }
    let total_target: u64 = match config.mode {
        Mode::Closed { .. } => (config.requests_per_conn * connections) as u64,
        // Open loop: the schedule decides; this is just the cap.
        Mode::Open { rate_rps } => (rate_rps * config.duration.as_secs_f64()).ceil() as u64,
    };

    let mut latencies_us: Vec<u64> = Vec::new();
    let mut errors: u64 = 0;
    let mut sent_total: u64 = 0;
    let mut next_conn = 0usize; // open-loop round-robin cursor
    let started = Instant::now();
    let hard_stop = config.duration * 2 + config.drain;
    let mut set = PollSet::new();

    // Closed-loop: prime every connection's pipeline.
    if let Mode::Closed { pipeline } = config.mode {
        let prime = pipeline.max(1);
        for conn in conns.iter_mut() {
            for _ in 0..prime {
                if conn.sent < config.requests_per_conn as u64 {
                    inject(conn, config, &mut sent_total);
                }
            }
        }
    }

    loop {
        let elapsed = started.elapsed();
        // Open-loop schedule: inject every request whose arrival time
        // has passed, round-robin across connections.
        if let Mode::Open { rate_rps } = config.mode {
            if elapsed < config.duration {
                let due = (rate_rps * elapsed.as_secs_f64()).floor() as u64;
                while sent_total < due.min(total_target) {
                    let slot = next_conn % conns.len();
                    let conn = &mut conns[slot];
                    next_conn += 1;
                    if !conn.broken {
                        inject(conn, config, &mut sent_total);
                    } else {
                        sent_total += 1; // schedule slot burned on a dead conn
                        errors += 1;
                    }
                }
            }
        }

        let injecting = match config.mode {
            Mode::Closed { .. } => sent_total < total_target,
            Mode::Open { .. } => elapsed < config.duration && sent_total < total_target,
        };
        let outstanding: u64 = conns.iter().map(|c| c.outstanding).sum();
        if !injecting && outstanding == 0 {
            break;
        }
        if !injecting && elapsed > config.duration + config.drain {
            errors += outstanding; // drain timeout: the rest never came
            break;
        }
        if elapsed > hard_stop {
            errors += outstanding;
            break;
        }

        set.clear();
        for (index, conn) in conns.iter().enumerate() {
            if conn.broken {
                continue;
            }
            let interest =
                Interest { readable: conn.outstanding > 0, writable: conn.io.wants_write() };
            set.register(&conn.io, index as u64, interest);
        }
        if set.is_empty() {
            // Everything broke; nothing will ever arrive.
            errors += outstanding;
            break;
        }
        let timeout = match config.mode {
            Mode::Open { .. } => Duration::from_millis(2),
            Mode::Closed { .. } => Duration::from_millis(20),
        };
        set.poll(Some(timeout)).map_err(|e| format!("loadgen: poll failed: {e}"))?;
        let events: Vec<_> = set.events().collect();
        for event in events {
            let conn = &mut conns[event.token as usize];
            if event.readable || event.closed {
                match conn.io.fill() {
                    Ok(_) => {
                        drain_responses(conn, &mut latencies_us, &mut errors);
                        if conn.io.read_closed() && conn.outstanding > 0 {
                            errors += conn.outstanding;
                            conn.outstanding = 0;
                            conn.broken = true;
                        }
                    }
                    Err(_) => {
                        errors += conn.outstanding;
                        conn.outstanding = 0;
                        conn.broken = true;
                        continue;
                    }
                }
            }
            if conn.io.wants_write() && conn.io.flush().is_err() {
                errors += conn.outstanding;
                conn.outstanding = 0;
                conn.broken = true;
            }
            // Closed-loop refill: responses free pipeline slots.
            if let Mode::Closed { pipeline } = config.mode {
                let pipeline = pipeline.max(1) as u64;
                while !conn.broken
                    && conn.outstanding < pipeline
                    && conn.sent < config.requests_per_conn as u64
                {
                    inject(conn, config, &mut sent_total);
                }
            }
        }
    }

    let duration_s = started.elapsed().as_secs_f64().max(1e-9);
    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let rank = ((latencies_us.len() as f64) * p).ceil() as usize;
        latencies_us[rank.clamp(1, latencies_us.len()) - 1]
    };
    Ok(StageResult {
        connections,
        mode: config.mode.tag().to_string(),
        protocol: config.protocol.tag().to_string(),
        workload: config.workload.tag().to_string(),
        requests: latencies_us.len() as u64,
        errors,
        duration_s,
        throughput_rps: latencies_us.len() as f64 / duration_s,
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
    })
}

/// Queues one request on `conn` and records its send timestamp.
fn inject(conn: &mut ClientConn, config: &LoadgenConfig, sent_total: &mut u64) {
    let id = format!("lg-{}", conn.sent);
    let payload = match config.workload {
        Workload::Ping => "{\"op\":\"ping\"}".to_string(),
        Workload::Synthesize => format!(
            "{{\"id\":{id:?},\"code\":{{\"family\":\"rotated-surface\"}},\
             \"noise\":\"brisbane\",\"strategy\":\"lowest-depth\",\
             \"budget\":8,\"shots\":120,\"seed\":1,\"progress\":false}}"
        ),
    };
    let now = Instant::now();
    let encoded = encode_request(config.protocol, &payload)
        .expect("loadgen request payloads are fixed strings far below the frame cap");
    conn.io.queue(&encoded);
    let correlation = match (config.protocol, config.workload) {
        // Synthesize responses arrive in completion order on v2; every
        // other (protocol, workload) pair answers in request order.
        (WireProtocol::V2, Workload::Synthesize) => Correlation::ById(id),
        _ => Correlation::Ordered,
    };
    conn.pending.track(correlation, now);
    conn.sent += 1;
    conn.outstanding += 1;
    *sent_total += 1;
}

/// Consumes every complete response buffered on `conn`, recording
/// latency samples.
fn drain_responses(conn: &mut ClientConn, latencies_us: &mut Vec<u64>, errors: &mut u64) {
    let now = Instant::now();
    let bytes = std::mem::take(conn.io.rbuf());
    conn.events.feed(&bytes);
    loop {
        match conn.events.next_event() {
            Ok(Some(WireEvent::Response(payload))) => {
                record_response(conn, &payload, now, latencies_us, errors);
            }
            // Progress is opted out of per request; Goodbye carries no
            // response. Neither settles a request.
            Ok(Some(WireEvent::Progress(_) | WireEvent::Goodbye(_))) => {}
            Ok(None) => return,
            Err(_) => {
                *errors += conn.outstanding;
                conn.outstanding = 0;
                conn.broken = true;
                return;
            }
        }
    }
}

fn record_response(
    conn: &mut ClientConn,
    payload: &[u8],
    now: Instant,
    latencies_us: &mut Vec<u64>,
    errors: &mut u64,
) {
    let parsed: Option<Value> =
        std::str::from_utf8(payload).ok().and_then(|t| serde_json::from_str(t.trim()).ok());
    let id = parsed.as_ref().and_then(|v| v.get("id")).and_then(Value::as_str);
    let Some(sent) = conn.pending.settle(id) else { return };
    conn.outstanding = conn.outstanding.saturating_sub(1);
    let is_error = parsed.as_ref().map(|v| v.get("error").is_some()).unwrap_or(true);
    if is_error {
        *errors += 1;
    } else {
        latencies_us.push(now.duration_since(sent).as_micros() as u64);
    }
}

/// Serializes a run into the tracked `BENCH_serving.json` document
/// (`kind: "serving"`; validated by `asynd validate`).
pub fn report_to_json(config: &LoadgenConfig, results: &[StageResult]) -> Value {
    let mut doc = Map::new();
    doc.insert("generated_by", Value::from("asynd loadgen"));
    doc.insert("kind", Value::from("serving"));
    let mut cfg = Map::new();
    cfg.insert("mode", Value::from(config.mode.tag()));
    cfg.insert("protocol", Value::from(config.protocol.tag()));
    cfg.insert("workload", Value::from(config.workload.tag()));
    match config.mode {
        Mode::Closed { pipeline } => {
            cfg.insert("pipeline", Value::from(pipeline as u64));
            cfg.insert("requests_per_conn", Value::from(config.requests_per_conn as u64));
        }
        Mode::Open { rate_rps } => {
            cfg.insert("rate_rps", Value::from(rate_rps));
            cfg.insert("duration_s", Value::from(config.duration.as_secs_f64()));
        }
    }
    doc.insert("config", Value::Object(cfg));
    let records: Vec<Value> = results
        .iter()
        .map(|stage| {
            let mut record = Map::new();
            record.insert("connections", Value::from(stage.connections as u64));
            record.insert("mode", Value::from(stage.mode.as_str()));
            record.insert("protocol", Value::from(stage.protocol.as_str()));
            record.insert("workload", Value::from(stage.workload.as_str()));
            record.insert("requests", Value::from(stage.requests));
            record.insert("errors", Value::from(stage.errors));
            record.insert("duration_s", Value::from(stage.duration_s));
            record.insert("throughput_rps", Value::from(stage.throughput_rps));
            record.insert("p50_us", Value::from(stage.p50_us));
            record.insert("p90_us", Value::from(stage.p90_us));
            record.insert("p99_us", Value::from(stage.p99_us));
            record.insert("max_us", Value::from(stage.max_us));
            Value::Object(record)
        })
        .collect();
    doc.insert("records", Value::Array(records));
    Value::Object(doc)
}

/// Validates a `BENCH_serving.json` document: the envelope must carry
/// `generated_by`, `kind: "serving"` and a non-empty `records` array
/// whose members are well-typed with ordered percentiles.
///
/// # Errors
///
/// Returns a message naming the first violation.
pub fn validate_serving_text(text: &str) -> Result<ServingSummary, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("report is not valid JSON: {e}"))?;
    doc.get("generated_by")
        .and_then(Value::as_str)
        .ok_or("report lacks a `generated_by` string")?;
    if doc.get("kind").and_then(Value::as_str) != Some("serving") {
        return Err("report lacks `kind: \"serving\"`".to_string());
    }
    let records =
        doc.get("records").and_then(Value::as_array).ok_or("report lacks a `records` array")?;
    if records.is_empty() {
        return Err("report has zero records".to_string());
    }
    let mut max_connections = 0u64;
    let mut requests_total = 0u64;
    for (index, record) in records.iter().enumerate() {
        let context =
            |member: &str, problem: &str| format!("record {index}: member `{member}` {problem}");
        let connections = record
            .get("connections")
            .and_then(Value::as_u64)
            .ok_or_else(|| context("connections", "must be a positive integer"))?;
        if connections == 0 {
            return Err(context("connections", "must be positive"));
        }
        max_connections = max_connections.max(connections);
        let mode = record
            .get("mode")
            .and_then(Value::as_str)
            .ok_or_else(|| context("mode", "must be a string"))?;
        if mode != "open" && mode != "closed" {
            return Err(context("mode", "must be `open` or `closed`"));
        }
        let protocol = record
            .get("protocol")
            .and_then(Value::as_str)
            .ok_or_else(|| context("protocol", "must be a string"))?;
        if protocol != "v1" && protocol != "v2" {
            return Err(context("protocol", "must be `v1` or `v2`"));
        }
        requests_total += record
            .get("requests")
            .and_then(Value::as_u64)
            .ok_or_else(|| context("requests", "must be a non-negative integer"))?;
        record
            .get("errors")
            .and_then(Value::as_u64)
            .ok_or_else(|| context("errors", "must be a non-negative integer"))?;
        for member in ["duration_s", "throughput_rps"] {
            let number = record
                .get(member)
                .and_then(Value::as_f64)
                .ok_or_else(|| context(member, "must be a number"))?;
            if number < 0.0 {
                return Err(context(member, "must be non-negative"));
            }
        }
        let mut last = 0u64;
        for member in ["p50_us", "p90_us", "p99_us", "max_us"] {
            let value = record
                .get(member)
                .and_then(Value::as_u64)
                .ok_or_else(|| context(member, "must be a non-negative integer"))?;
            if value < last {
                return Err(context(member, "must be ordered (p50 ≤ p90 ≤ p99 ≤ max)"));
            }
            last = value;
        }
    }
    Ok(ServingSummary { records: records.len(), max_connections, requests_total })
}

/// Summary returned by [`validate_serving_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingSummary {
    /// Ramp stages in the document.
    pub records: usize,
    /// Largest connection count across stages.
    pub max_connections: u64,
    /// Total timed requests across stages.
    pub requests_total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Value {
        let config = LoadgenConfig::default();
        let results = vec![
            StageResult {
                connections: 10,
                mode: "closed".into(),
                protocol: "v1".into(),
                workload: "ping".into(),
                requests: 500,
                errors: 0,
                duration_s: 0.5,
                throughput_rps: 1000.0,
                p50_us: 120,
                p90_us: 300,
                p99_us: 800,
                max_us: 1500,
            },
            StageResult {
                connections: 1000,
                mode: "closed".into(),
                protocol: "v1".into(),
                workload: "ping".into(),
                requests: 50_000,
                errors: 2,
                duration_s: 5.0,
                throughput_rps: 10_000.0,
                p50_us: 400,
                p90_us: 900,
                p99_us: 2500,
                max_us: 9000,
            },
        ];
        report_to_json(&config, &results)
    }

    #[test]
    fn report_roundtrips_through_the_validator() {
        let text = serde_json::to_string(&sample_report()).unwrap();
        let summary = validate_serving_text(&text).unwrap();
        assert_eq!(summary.records, 2);
        assert_eq!(summary.max_connections, 1000);
        assert_eq!(summary.requests_total, 50_500);
    }

    #[test]
    fn validator_rejects_structural_violations() {
        for (mutation, needle) in
            [("kind", "kind"), ("records", "records"), ("generated_by", "generated_by")]
        {
            let report = sample_report();
            let mut doc = Map::new();
            for (key, value) in report.as_object().unwrap().iter() {
                if key != mutation {
                    doc.insert(key.as_str(), value.clone());
                }
            }
            let text = serde_json::to_string(&Value::Object(doc)).unwrap();
            let err = validate_serving_text(&text).unwrap_err();
            assert!(err.contains(needle), "dropping {mutation}: {err}");
        }
    }

    #[test]
    fn validator_rejects_disordered_percentiles() {
        let report = sample_report();
        let text = serde_json::to_string(&report).unwrap();
        // p99 below p50 must fail.
        let broken = text.replace("\"p99_us\":800", "\"p99_us\":10");
        assert_ne!(text, broken, "mutation must apply");
        let err = validate_serving_text(&broken).unwrap_err();
        assert!(err.contains("ordered"), "got: {err}");
    }

    #[test]
    fn zero_connection_stages_are_rejected_up_front() {
        let config = LoadgenConfig { connections: vec![0], ..LoadgenConfig::default() };
        assert!(run(&config).unwrap_err().contains("at least one connection"));
    }
}

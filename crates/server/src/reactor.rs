//! The reactor serving layer: a nonblocking `poll(2)` event loop that
//! multiplexes every TCP connection of an `asynd serve --tcp` process
//! over a handful of threads, speaking both wire protocols.
//!
//! # Architecture
//!
//! [`serve_tcp_with`] starts `N` *reactor* threads (default one).
//! Reactor 0 owns the listener and distributes accepted connections
//! round-robin across all reactors through per-reactor inboxes; each
//! reactor then owns its connections outright — their buffers, parser
//! state and job bookkeeping are plain single-threaded data, never
//! locked. The only cross-thread traffic is job completion: a worker
//! finishing a job pushes a `JobEvent` onto the owning reactor's
//! completion queue and rings its [`Waker`], which the reactor polls
//! alongside its sockets.
//!
//! # Protocols
//!
//! The wire protocol is autodetected per connection from the first byte:
//! [`FRAME_MAGIC`] selects framed protocol v2, anything else the v1
//! JSON-lines protocol. v1 semantics are byte-compatible with the
//! historical thread-per-connection server (and with [`serve_lines`]):
//! probes and protocol errors are answered immediately, job responses
//! strictly in submission order, `shutdown` drains pending jobs, acks
//! and stops the whole server. v2 frames job responses by id instead of
//! by order, streams [`ProgressUpdate`] lifecycle events, and supports
//! client-initiated cancellation of queued jobs (running jobs complete;
//! see [`CancelRequest`]).
//!
//! # Backpressure
//!
//! Two signals stop a connection from being read: an outbound buffer
//! above [`WRITE_HIGH_WATER`] (resumed below [`WRITE_LOW_WATER`]), and
//! a full job queue — submissions that cannot be enqueued are *deferred*
//! per connection and retried from the event loop, never rejected and
//! never blocking the reactor. Both states simply drop read interest, so
//! a slow or flooding client throttles itself via TCP while every other
//! connection keeps its latency.
//!
//! # Determinism
//!
//! Reactors only move bytes and order submissions; job *results* are a
//! pure function of each request (see the crate docs' determinism
//! contract), so the reactor count and connection interleaving can shift
//! scheduling and response order between independent jobs, but never the
//! bits of any job's result.
//!
//! [`serve_lines`]: crate::serve_lines

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use asynd_net::frame::{Frame, FrameDecoder, FrameKind, FRAME_MAGIC};
use asynd_net::{wake_pair, Connection, Interest, PollEvent, PollSet, WakeReceiver, Waker};
use asynd_telemetry::{labeled, Counter, Gauge, MetricsRegistry};
use serde_json::{Map, Value};

use crate::lock_unpoisoned;
use crate::protocol::{CancelRequest, ProgressUpdate, Request, Response};
use crate::server::{JobSink, QueuedJob, ScheduleServer, JOB_CANCELLED, JOB_QUEUED};
use crate::ServerError;

/// Outbound bytes above which a connection stops being read (write
/// backpressure engages).
pub const WRITE_HIGH_WATER: usize = 1 << 20;

/// Outbound bytes below which a paused connection resumes being read
/// (hysteresis, so a client hovering at the boundary does not flap).
pub const WRITE_LOW_WATER: usize = 64 << 10;

/// Poll token of the reactor's wakeup channel.
const TOKEN_WAKE: u64 = 0;
/// Poll token of the listener (reactor 0 only).
const TOKEN_LISTENER: u64 = 1;
/// First token handed to a connection; tokens are never reused, so a
/// late [`JobEvent`] for a dropped connection falls into the void
/// instead of landing on a stranger.
const FIRST_CONN_TOKEN: u64 = 2;

/// Poll timeout when every connection is idle.
const IDLE_POLL: Duration = Duration::from_millis(50);
/// Poll timeout while deferred submissions are waiting for queue space.
const RETRY_POLL: Duration = Duration::from_millis(2);

/// Configuration of [`serve_tcp_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorOptions {
    /// Reactor (event loop) threads. `0` is treated as `1`. One reactor
    /// comfortably drives thousands of connections; more reactors spread
    /// parsing and serialization over cores.
    pub reactors: usize,
}

impl Default for ReactorOptions {
    fn default() -> Self {
        ReactorOptions { reactors: 1 }
    }
}

/// A worker→reactor completion event, routed by connection token.
enum JobEvent {
    /// A job finished; `seq` orders v1 emission, `id` keys v2 frames.
    Done { conn: u64, seq: u64, id: String, response: Response },
    /// A lifecycle event of a running job (v2 streams these).
    Progress { conn: u64, update: ProgressUpdate },
}

/// The worker-side handle of one reactor-submitted job: where its
/// response (and optional progress stream) is delivered.
pub(crate) struct ReactorSink {
    events: Arc<Mutex<VecDeque<JobEvent>>>,
    waker: Arc<Waker>,
    conn: u64,
    seq: u64,
    id: String,
    want_progress: bool,
}

impl ReactorSink {
    pub(crate) fn done(&self, response: Response) {
        let event =
            JobEvent::Done { conn: self.conn, seq: self.seq, id: self.id.clone(), response };
        lock_unpoisoned(&self.events).push_back(event);
        self.waker.wake();
    }

    pub(crate) fn progress(&self, update: ProgressUpdate) {
        if !self.want_progress {
            return;
        }
        let event = JobEvent::Progress { conn: self.conn, update };
        lock_unpoisoned(&self.events).push_back(event);
        self.waker.wake();
    }
}

/// Per-reactor telemetry, labelled by reactor index.
struct ReactorMetrics {
    connections: Gauge,
    accepted: Counter,
    frames: Counter,
    wakeups: Counter,
}

impl ReactorMetrics {
    fn register(registry: &MetricsRegistry, index: usize) -> ReactorMetrics {
        let idx = index.to_string();
        let labels: &[(&str, &str)] = &[("reactor", &idx)];
        ReactorMetrics {
            connections: registry.gauge(&labeled("asynd_reactor_connections", labels)),
            accepted: registry.counter(&labeled("asynd_reactor_accepted_total", labels)),
            frames: registry.counter(&labeled("asynd_reactor_frames_total", labels)),
            wakeups: registry.counter(&labeled("asynd_reactor_wakeups_total", labels)),
        }
    }
}

/// Everything a connection handler needs besides the connection itself.
struct Ctx<'s> {
    server: &'s ScheduleServer,
    /// This reactor's index — also the queue shard it submits to, so a
    /// connection's jobs stay cache-adjacent to one worker's home shard.
    index: usize,
    events: Arc<Mutex<VecDeque<JobEvent>>>,
    waker: Arc<Waker>,
    shutdown: Arc<AtomicBool>,
    all_wakers: Vec<Arc<Waker>>,
    inboxes: Vec<Arc<Mutex<VecDeque<TcpStream>>>>,
    metrics: ReactorMetrics,
}

/// Serves both wire protocols over TCP on `options.reactors` event-loop
/// threads. See the module docs for the architecture and protocol
/// semantics.
///
/// Returns after a client requests shutdown (v1 `{"op":"shutdown"}`
/// line or v2 shutdown request frame) and every open connection has
/// drained and closed.
///
/// # Errors
///
/// Returns reactor-loop I/O errors (listener accept failures, a broken
/// wakeup channel). Per-connection errors only end that connection.
pub fn serve_tcp_with(
    server: &ScheduleServer,
    listener: TcpListener,
    options: ReactorOptions,
) -> std::io::Result<()> {
    let reactors = options.reactors.max(1);
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut wakers = Vec::with_capacity(reactors);
    let mut receivers = Vec::with_capacity(reactors);
    for _ in 0..reactors {
        let (waker, receiver) = wake_pair()?;
        wakers.push(Arc::new(waker));
        receivers.push(receiver);
    }
    let inboxes: Vec<Arc<Mutex<VecDeque<TcpStream>>>> =
        (0..reactors).map(|_| Arc::new(Mutex::new(VecDeque::new()))).collect();
    let mut listener = Some(listener);
    std::thread::scope(|scope| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(index, wake_rx)| {
                let reactor = Reactor {
                    ctx: Ctx {
                        server,
                        index,
                        events: Arc::new(Mutex::new(VecDeque::new())),
                        waker: Arc::clone(&wakers[index]),
                        shutdown: Arc::clone(&shutdown),
                        all_wakers: wakers.clone(),
                        inboxes: inboxes.clone(),
                        metrics: ReactorMetrics::register(server.telemetry(), index),
                    },
                    wake_rx,
                    listener: if index == 0 { listener.take() } else { None },
                    conns: BTreeMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    next_assign: 0,
                };
                std::thread::Builder::new()
                    .name(format!("asynd-reactor-{index}"))
                    .spawn_scoped(scope, move || reactor.run())
                    .expect("spawning a reactor thread failed") // asynd-lint: allow(panic-in-hot-path) -- startup-time OS failure, not peer input; nothing is serving yet
            })
            .collect();
        let mut first_err = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// One event-loop thread: owns its connections, polls them plus its
/// wakeup channel (and the listener, on reactor 0).
struct Reactor<'s> {
    ctx: Ctx<'s>,
    wake_rx: WakeReceiver,
    listener: Option<TcpListener>,
    /// Owned connections by token. A `BTreeMap` so poll registration
    /// and sweep visit connections in a stable (token) order run to run.
    conns: BTreeMap<u64, Conn>,
    next_token: u64,
    /// Round-robin cursor for distributing accepted connections.
    next_assign: usize,
}

impl Reactor<'_> {
    fn run(mut self) -> std::io::Result<()> {
        let mut set = PollSet::new();
        loop {
            self.adopt_pending();
            if self.ctx.shutdown.load(Ordering::SeqCst) {
                // Stop accepting; serve the connections that remain
                // until they drain, then exit.
                self.listener = None;
                let inbox_empty = lock_unpoisoned(&self.ctx.inboxes[self.ctx.index]).is_empty();
                if self.conns.is_empty() && inbox_empty {
                    return Ok(());
                }
            }
            set.clear();
            set.register(&self.wake_rx, TOKEN_WAKE, Interest::READABLE);
            if let Some(listener) = &self.listener {
                set.register(listener, TOKEN_LISTENER, Interest::READABLE);
            }
            let mut deferred = false;
            for (&token, conn) in &self.conns {
                deferred |= !conn.deferred.is_empty();
                let interest = Interest {
                    readable: !conn.paused() && !conn.io.read_closed(),
                    writable: conn.io.wants_write(),
                };
                set.register(&conn.io, token, interest);
            }
            let timeout = if deferred { RETRY_POLL } else { IDLE_POLL };
            set.poll(Some(timeout))?;
            let events: Vec<PollEvent> = set.events().collect();
            for event in &events {
                match event.token {
                    TOKEN_WAKE => {
                        self.wake_rx.drain();
                        self.ctx.metrics.wakeups.inc();
                    }
                    TOKEN_LISTENER => self.accept_burst()?,
                    token if event.readable || event.closed => self.conn_readable(token),
                    // Write readiness is handled by the maintenance
                    // flush below.
                    _ => {}
                }
            }
            self.adopt_pending();
            self.drain_events();
            self.sweep();
        }
    }

    /// Accepts until the listener would block, distributing connections
    /// round-robin across reactors.
    fn accept_burst(&mut self) -> std::io::Result<()> {
        loop {
            let Some(listener) = &self.listener else { return Ok(()) };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.ctx.metrics.accepted.inc();
                    let target = self.next_assign % self.ctx.all_wakers.len();
                    self.next_assign += 1;
                    if target == self.ctx.index {
                        self.adopt(stream);
                    } else {
                        lock_unpoisoned(&self.ctx.inboxes[target]).push_back(stream);
                        self.ctx.all_wakers[target].wake();
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Adopts connections other reactors accepted on this reactor's
    /// behalf.
    fn adopt_pending(&mut self) {
        loop {
            let stream = lock_unpoisoned(&self.ctx.inboxes[self.ctx.index]).pop_front();
            match stream {
                Some(stream) => self.adopt(stream),
                None => return,
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        // A stream that cannot be switched to nonblocking mode is
        // useless to an event loop; drop it, not the reactor.
        let Ok(io) = Connection::new(stream) else { return };
        let token = self.next_token;
        self.next_token += 1;
        self.conns.insert(token, Conn::new(io));
        self.ctx.metrics.connections.add(1);
    }

    /// Reads a ready connection and runs its protocol parser.
    fn conn_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        match conn.io.fill() {
            Ok(_) => conn.process_input(token, &self.ctx),
            Err(_) => conn.broken = true,
        }
    }

    /// Routes queued worker completions to their connections.
    fn drain_events(&mut self) {
        loop {
            let event = lock_unpoisoned(&self.ctx.events).pop_front();
            let Some(event) = event else { return };
            match event {
                JobEvent::Done { conn, seq, id, response } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.on_done(seq, &id, response);
                    }
                }
                JobEvent::Progress { conn, update } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.on_progress(&update);
                    }
                }
            }
        }
    }

    /// Per-connection upkeep: retry deferred submissions, emit ordered
    /// v1 responses, run shutdown/EOF endgames, flush, and collect the
    /// dead.
    fn sweep(&mut self) {
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in self.conns.iter_mut() {
            if conn.broken || !conn.maintenance(token, &self.ctx) {
                dead.push(token);
            }
        }
        for token in dead {
            if let Some(conn) = self.conns.remove(&token) {
                // Jobs still queued on behalf of a vanished client are
                // cancelled so workers skip them (best-effort: a job
                // already claimed completes and its event is dropped).
                for state in &conn.states {
                    let _ = state.compare_exchange(
                        JOB_QUEUED,
                        JOB_CANCELLED,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                }
                self.ctx.metrics.connections.sub(1);
            }
        }
    }
}

/// Parser state of one connection: which protocol it speaks, decided by
/// its first byte.
enum Proto {
    /// Nothing received yet.
    Unknown,
    /// JSON-lines (the v1 protocol).
    V1(V1State),
    /// Framed protocol v2.
    V2(V2State),
}

/// v1 bookkeeping: job responses are emitted strictly in submission
/// order, so finished-out-of-order responses park in `ready` until their
/// turn.
struct V1State {
    /// Sequence number handed to the next submitted job.
    next_seq: u64,
    /// Sequence number whose response is emitted next.
    emit_seq: u64,
    /// Finished jobs waiting for their emission turn.
    ready: BTreeMap<u64, Response>,
    /// The peer sent `{"op":"shutdown"}`: drain, ack, stop the server.
    shutdown_requested: bool,
}

impl V1State {
    fn new() -> V1State {
        V1State { next_seq: 0, emit_seq: 0, ready: BTreeMap::new(), shutdown_requested: false }
    }
}

/// v2 bookkeeping: responses are keyed by job id (no ordering
/// constraint), progress streams, and queued jobs can be cancelled.
struct V2State {
    decoder: FrameDecoder,
    /// Lifecycle state of every pending job, by id — the cancellation
    /// lookup table.
    jobs: HashMap<String, Arc<AtomicU8>>,
    /// Jobs submitted to the queue whose `Done` event is still owed.
    inflight: usize,
    /// The peer sent a shutdown request frame.
    shutdown_requested: bool,
    /// A `Goodbye` frame is queued; nothing further will be sent.
    goodbye_sent: bool,
    /// The peer sent `Goodbye`: no more requests will arrive; close
    /// once pending work has drained.
    peer_goodbye: bool,
}

impl V2State {
    fn new() -> V2State {
        V2State {
            decoder: FrameDecoder::new(),
            jobs: HashMap::new(),
            inflight: 0,
            shutdown_requested: false,
            goodbye_sent: false,
            peer_goodbye: false,
        }
    }
}

/// One connection owned by a reactor.
struct Conn {
    io: Connection,
    proto: Proto,
    /// Submissions awaiting queue space, retried from the event loop in
    /// arrival order (queue-full backpressure; reads pause meanwhile).
    deferred: VecDeque<QueuedJob>,
    /// Lifecycle states of jobs submitted by this connection, kept so a
    /// dead connection's queued jobs can be cancelled.
    states: Vec<Arc<AtomicU8>>,
    /// Write backpressure latch (see [`WRITE_HIGH_WATER`]).
    paused_write: bool,
    /// The shutdown ack is queued; once it flushes, flip the global
    /// shutdown flag and close.
    shutdown_acked: bool,
    /// Close once the outbound buffer drains (post-`Goodbye`).
    dying: bool,
    /// Transport error: close immediately.
    broken: bool,
}

impl Conn {
    fn new(io: Connection) -> Conn {
        Conn {
            io,
            proto: Proto::Unknown,
            deferred: VecDeque::new(),
            states: Vec::new(),
            paused_write: false,
            shutdown_acked: false,
            dying: false,
            broken: false,
        }
    }

    /// The v1 protocol state, when this connection negotiated v1.
    /// `None` on a v2 or undecided connection — callers bail out rather
    /// than assert, so a protocol-state mixup degrades to a dropped
    /// message instead of a reactor panic.
    fn v1_mut(&mut self) -> Option<&mut V1State> {
        match &mut self.proto {
            Proto::V1(v1) => Some(v1),
            Proto::Unknown | Proto::V2(_) => None,
        }
    }

    /// The v2 protocol state, when this connection negotiated v2.
    fn v2_mut(&mut self) -> Option<&mut V2State> {
        match &mut self.proto {
            Proto::V2(v2) => Some(v2),
            Proto::Unknown | Proto::V1(_) => None,
        }
    }

    /// Whether reads are paused (backpressure or endgame).
    fn paused(&self) -> bool {
        self.paused_write
            || !self.deferred.is_empty()
            || self.shutdown_acked
            || self.dying
            || match &self.proto {
                Proto::Unknown => false,
                Proto::V1(v1) => v1.shutdown_requested,
                Proto::V2(v2) => v2.shutdown_requested || v2.goodbye_sent || v2.peer_goodbye,
            }
    }

    /// Parses whatever has accumulated in the inbound buffer.
    fn process_input(&mut self, token: u64, ctx: &Ctx) {
        if matches!(self.proto, Proto::Unknown) {
            match self.io.rbuf().first().copied() {
                None => return,
                Some(FRAME_MAGIC) => self.proto = Proto::V2(V2State::new()),
                Some(_) => self.proto = Proto::V1(V1State::new()),
            }
        }
        match self.proto {
            Proto::Unknown => {}
            Proto::V1(_) => self.process_v1(token, ctx),
            Proto::V2(_) => self.process_v2(token, ctx),
        }
    }

    // ---- v1: JSON lines ------------------------------------------------

    fn process_v1(&mut self, token: u64, ctx: &Ctx) {
        loop {
            if let Proto::V1(v1) = &self.proto {
                if v1.shutdown_requested {
                    // Like serve_lines: nothing after shutdown is read.
                    self.io.rbuf().clear();
                    return;
                }
            }
            let Some(line) = take_line(&mut self.io) else { return };
            self.process_v1_line(&line, token, ctx);
        }
    }

    fn process_v1_line(&mut self, line: &[u8], token: u64, ctx: &Ctx) {
        let parsed = match std::str::from_utf8(line) {
            Ok(text) => {
                let line = text.trim_end_matches(['\n', '\r']);
                if line.trim().is_empty() {
                    return;
                }
                Request::parse(line)
            }
            Err(_) => {
                Err(ServerError::Protocol { reason: "request line is not valid UTF-8".to_string() })
            }
        };
        match parsed {
            Ok(Request::Synthesize(request)) => {
                let seq = {
                    let Some(v1) = self.v1_mut() else { return };
                    let seq = v1.next_seq;
                    v1.next_seq += 1;
                    seq
                };
                let sink = ReactorSink {
                    events: Arc::clone(&ctx.events),
                    waker: Arc::clone(&ctx.waker),
                    conn: token,
                    seq,
                    id: request.id.clone(),
                    want_progress: false,
                };
                let job = QueuedJob::new(request, JobSink::Reactor(sink));
                self.states.push(Arc::clone(&job.state));
                self.submit_or_defer(job, ctx);
            }
            Ok(Request::Lookup(request)) => queue_line(&mut self.io, &ctx.server.lookup(&request)),
            Ok(Request::Metrics(id)) => queue_line(&mut self.io, &ctx.server.metrics(&id)),
            Ok(Request::Ping) => queue_line(&mut self.io, &Response::Pong),
            Ok(Request::Shutdown) => {
                if let Some(v1) = self.v1_mut() {
                    v1.shutdown_requested = true;
                }
            }
            Err(e) => queue_line(
                &mut self.io,
                &Response::Error { id: String::new(), error: e.to_string() },
            ),
        }
    }

    // ---- v2: frames ----------------------------------------------------

    fn process_v2(&mut self, token: u64, ctx: &Ctx) {
        let bytes = std::mem::take(self.io.rbuf());
        {
            let Some(v2) = self.v2_mut() else { return };
            v2.decoder.feed(&bytes);
        }
        loop {
            let frame = {
                let Some(v2) = self.v2_mut() else { return };
                if v2.goodbye_sent || v2.peer_goodbye {
                    return;
                }
                v2.decoder.next_frame()
            };
            match frame {
                Ok(Some(frame)) => {
                    ctx.metrics.frames.inc();
                    self.handle_v2_frame(frame, token, ctx);
                }
                Ok(None) => return,
                Err(e) => {
                    // The stream is unrecoverable (the decoder stays
                    // poisoned): say why, then hang up after the flush.
                    self.queue_goodbye(&goodbye_error(&e.to_string()));
                    self.dying = true;
                    return;
                }
            }
        }
    }

    fn handle_v2_frame(&mut self, frame: Frame, token: u64, ctx: &Ctx) {
        match frame.kind {
            FrameKind::Request => self.handle_v2_request(&frame.payload, token, ctx),
            FrameKind::Cancel => self.handle_v2_cancel(&frame.payload, ctx),
            FrameKind::Goodbye => {
                if let Some(v2) = self.v2_mut() {
                    v2.peer_goodbye = true;
                }
            }
            // Response and Progress only travel server→client.
            FrameKind::Response | FrameKind::Progress => {
                let detail = format!("unexpected client-sent frame kind {:?}", frame.kind);
                self.queue_goodbye(&goodbye_error(&detail));
                self.dying = true;
            }
        }
    }

    fn handle_v2_request(&mut self, payload: &[u8], token: u64, ctx: &Ctx) {
        let Ok(text) = std::str::from_utf8(payload) else {
            self.queue_response_frame(&Response::Error {
                id: String::new(),
                error: "protocol error: request payload is not valid UTF-8".to_string(),
            });
            return;
        };
        match Request::parse(text) {
            Ok(Request::Synthesize(request)) => {
                // Progress streaming is on unless the request opts out
                // with `"progress": false`.
                let want_progress = serde_json::from_str(text)
                    .ok()
                    .and_then(|v| v.get("progress").and_then(Value::as_bool))
                    .unwrap_or(true);
                let sink = ReactorSink {
                    events: Arc::clone(&ctx.events),
                    waker: Arc::clone(&ctx.waker),
                    conn: token,
                    seq: 0,
                    id: request.id.clone(),
                    want_progress,
                };
                let id = request.id.clone();
                let job = QueuedJob::new(request, JobSink::Reactor(sink));
                self.states.push(Arc::clone(&job.state));
                let Some(v2) = self.v2_mut() else { return };
                v2.jobs.insert(id, Arc::clone(&job.state));
                self.submit_or_defer(job, ctx);
            }
            Ok(Request::Lookup(request)) => self.queue_response_frame(&ctx.server.lookup(&request)),
            Ok(Request::Metrics(id)) => self.queue_response_frame(&ctx.server.metrics(&id)),
            Ok(Request::Ping) => self.queue_response_frame(&Response::Pong),
            Ok(Request::Shutdown) => {
                if let Some(v2) = self.v2_mut() {
                    v2.shutdown_requested = true;
                }
            }
            Err(e) => self
                .queue_response_frame(&Response::Error { id: String::new(), error: e.to_string() }),
        }
    }

    fn handle_v2_cancel(&mut self, payload: &[u8], ctx: &Ctx) {
        let cancel = match CancelRequest::parse(payload) {
            Ok(cancel) => cancel,
            Err(e) => {
                self.queue_response_frame(&Response::Error {
                    id: String::new(),
                    error: e.to_string(),
                });
                return;
            }
        };
        // A deferred job never reached the queue; the reactor answers
        // for it directly.
        if let Some(pos) = self.deferred.iter().position(|job| job.request.id == cancel.id) {
            let Some(job) = self.deferred.remove(pos) else { return };
            job.state.store(JOB_CANCELLED, Ordering::SeqCst);
            ctx.server.metrics_handles().jobs_cancelled.inc();
            if let Some(v2) = self.v2_mut() {
                v2.jobs.remove(&cancel.id);
            }
            self.queue_progress_frame(&ProgressUpdate::stage(&cancel.id, "cancelled"));
            self.queue_response_frame(&Response::Error {
                id: cancel.id,
                error: "job cancelled by client before it ran".to_string(),
            });
            return;
        }
        let state = self.v2_mut().and_then(|v2| v2.jobs.get(&cancel.id).cloned());
        let stage = match state {
            None => "cancel-unknown",
            Some(state) => match state.compare_exchange(
                JOB_QUEUED,
                JOB_CANCELLED,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                // The worker that pops the tombstone sends the final
                // error response (and counts the cancellation).
                Ok(_) => "cancelled",
                Err(_) => "cancel-too-late",
            },
        };
        self.queue_progress_frame(&ProgressUpdate::stage(&cancel.id, stage));
    }

    // ---- submissions ---------------------------------------------------

    /// Hands a job to the queue, or parks it in the deferred lane when
    /// the queue is full (arrival order is preserved: once anything is
    /// deferred, everything behind it defers too).
    fn submit_or_defer(&mut self, job: QueuedJob, ctx: &Ctx) {
        if !self.deferred.is_empty() {
            self.deferred.push_back(job);
            return;
        }
        if let Err(job) = self.try_submit(job, ctx) {
            self.deferred.push_back(job);
        }
    }

    /// One submission attempt; emits the v2 `queued` progress event on
    /// success. `Err` hands the job back for the deferred queue.
    #[allow(clippy::result_large_err)]
    fn try_submit(&mut self, job: QueuedJob, ctx: &Ctx) -> Result<(), QueuedJob> {
        let (id, want_progress) = match &job.sink {
            JobSink::Reactor(sink) => (sink.id.clone(), sink.want_progress),
            JobSink::Channel(_) => (String::new(), false),
        };
        ctx.server.try_enqueue(ctx.index, job)?;
        if let Proto::V2(v2) = &mut self.proto {
            v2.inflight += 1;
        }
        if want_progress {
            self.queue_progress_frame(&ProgressUpdate::stage(&id, "queued"));
        }
        Ok(())
    }

    fn retry_deferred(&mut self, ctx: &Ctx) {
        while let Some(job) = self.deferred.pop_front() {
            if let Err(job) = self.try_submit(job, ctx) {
                self.deferred.push_front(job);
                return;
            }
        }
    }

    // ---- completions ---------------------------------------------------

    fn on_done(&mut self, seq: u64, id: &str, response: Response) {
        match &mut self.proto {
            Proto::Unknown => {}
            Proto::V1(v1) => {
                v1.ready.insert(seq, response);
            }
            Proto::V2(v2) => {
                v2.jobs.remove(id);
                v2.inflight = v2.inflight.saturating_sub(1);
                if !v2.goodbye_sent {
                    queue_frame(&mut self.io, FrameKind::Response, &response.to_json_value());
                }
            }
        }
    }

    fn on_progress(&mut self, update: &ProgressUpdate) {
        self.queue_progress_frame(update);
    }

    // ---- upkeep --------------------------------------------------------

    /// Returns `false` when the connection is finished and should be
    /// dropped.
    fn maintenance(&mut self, _token: u64, ctx: &Ctx) -> bool {
        self.retry_deferred(ctx);
        // v1: emit finished responses in submission order; once drained,
        // ack a requested shutdown.
        if let Proto::V1(v1) = &mut self.proto {
            while let Some(response) = v1.ready.remove(&v1.emit_seq) {
                queue_line(&mut self.io, &response);
                v1.emit_seq += 1;
            }
            let drained = v1.emit_seq == v1.next_seq && self.deferred.is_empty();
            if v1.shutdown_requested && drained && !self.shutdown_acked {
                queue_line(&mut self.io, &Response::ShuttingDown);
                self.shutdown_acked = true;
            }
        }
        if let Proto::V2(v2) = &mut self.proto {
            let drained = v2.inflight == 0 && self.deferred.is_empty();
            if v2.shutdown_requested && drained && !self.shutdown_acked && !v2.goodbye_sent {
                let mut payload = Map::new();
                payload.insert("op", Value::from("goodbye"));
                payload.insert("shutdown", Value::from(true));
                queue_frame(&mut self.io, FrameKind::Goodbye, &Value::Object(payload));
                v2.goodbye_sent = true;
                self.shutdown_acked = true;
            }
        }
        if self.io.wants_write() && self.io.flush().is_err() {
            // A peer that hung up before reading its shutdown ack still
            // gets the shutdown honoured (serve_lines semantics).
            if self.shutdown_acked {
                trigger_shutdown(ctx);
            }
            return false;
        }
        let flushed = !self.io.wants_write();
        // Write-backpressure latch with hysteresis.
        let out = self.io.buffered_out();
        if out > WRITE_HIGH_WATER {
            self.paused_write = true;
        } else if out < WRITE_LOW_WATER {
            self.paused_write = false;
        }
        if self.states.len() > 64 {
            self.states.retain(|s| s.load(Ordering::SeqCst) == JOB_QUEUED);
        }
        if self.shutdown_acked && flushed {
            trigger_shutdown(ctx);
            return false;
        }
        if self.dying && flushed {
            return false;
        }
        // Peer EOF (or v2 Goodbye): close once owed work has been
        // delivered.
        let finishing =
            self.io.read_closed() || matches!(&self.proto, Proto::V2(v2) if v2.peer_goodbye);
        if finishing {
            let drained = self.deferred.is_empty()
                && match &self.proto {
                    Proto::Unknown => true,
                    Proto::V1(v1) => v1.emit_seq == v1.next_seq,
                    Proto::V2(v2) => v2.inflight == 0,
                };
            if drained && flushed {
                return false;
            }
        }
        true
    }

    // ---- outbound helpers ----------------------------------------------

    fn queue_progress_frame(&mut self, update: &ProgressUpdate) {
        if let Proto::V2(v2) = &self.proto {
            if !v2.goodbye_sent {
                queue_frame(&mut self.io, FrameKind::Progress, &update.to_json());
            }
        }
    }

    fn queue_response_frame(&mut self, response: &Response) {
        if let Proto::V2(v2) = &self.proto {
            if !v2.goodbye_sent {
                queue_frame(&mut self.io, FrameKind::Response, &response.to_json_value());
            }
        }
    }

    fn queue_goodbye(&mut self, payload: &Value) {
        if let Proto::V2(v2) = &mut self.proto {
            if !v2.goodbye_sent {
                queue_frame(&mut self.io, FrameKind::Goodbye, payload);
                v2.goodbye_sent = true;
            }
        }
    }
}

/// Flips the global shutdown flag and wakes every reactor so they all
/// observe it promptly.
fn trigger_shutdown(ctx: &Ctx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    for waker in &ctx.all_wakers {
        waker.wake();
    }
}

/// Extracts the next input line (newline-terminated, or the unterminated
/// tail once the peer has EOF'd — serve_lines processes that too).
fn take_line(io: &mut Connection) -> Option<Vec<u8>> {
    if let Some(pos) = io.rbuf().iter().position(|&b| b == b'\n') {
        return Some(io.rbuf().drain(..=pos).collect());
    }
    if io.read_closed() && !io.rbuf().is_empty() {
        return Some(std::mem::take(io.rbuf()));
    }
    None
}

/// Queues one v1 JSON line.
fn queue_line(io: &mut Connection, response: &Response) {
    io.queue(response.to_json().as_bytes());
    io.queue(b"\n");
}

/// Queues one v2 frame with a JSON payload. A payload that cannot be
/// framed (past the frame cap) is replaced with a small `Goodbye` —
/// sending nothing would leave the peer waiting forever, and truncating
/// would desynchronize the stream.
fn queue_frame(io: &mut Connection, kind: FrameKind, payload: &Value) {
    let encoded = serde_json::to_string(payload)
        .ok()
        .and_then(|text| Frame::new(kind, text.into_bytes()).encode().ok());
    if let Some(bytes) = encoded {
        io.queue(&bytes);
        return;
    }
    let fallback = serde_json::to_string(&goodbye_error("response exceeds the frame payload cap"))
        .ok()
        .and_then(|text| Frame::new(FrameKind::Goodbye, text.into_bytes()).encode().ok());
    if let Some(bytes) = fallback {
        io.queue(&bytes);
    }
}

/// A `Goodbye` payload explaining why the server is hanging up.
fn goodbye_error(detail: &str) -> Value {
    let mut map = Map::new();
    map.insert("op", Value::from("goodbye"));
    map.insert("error", Value::from(detail));
    Value::Object(map)
}

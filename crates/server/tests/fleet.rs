//! End-to-end tests of the distributed sweep fleet: the merged report is
//! bit-identical (canonical form) to an in-process sweep for any worker
//! count, a worker killed mid-cell loses no work, a tampered artifact is
//! rejected and re-raced, an unreachable fleet degrades to a local
//! sweep, and the coordinator's registry ships warm-start seeds to
//! registry-free workers.

use std::fs;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use asynd_net::frame::{Frame, FrameDecoder, FrameKind};
use asynd_registry::Registry;
use asynd_server::fleet::LocalWorker;
use asynd_server::sweep::{canonical_report_value, SweepConfig, SweepOptions, SweepReport};

/// The fault-test grid: 2 families × 1 entry × 2 rates = 4 cells.
fn tiny_config() -> SweepConfig {
    SweepConfig {
        seed: 11,
        error_rates: vec![3e-3, 7.4e-3],
        families: vec!["rotated-surface".into(), "hexagonal-color".into()],
        max_qubits: 9,
        entries_per_family: 1,
        budget_multiplier: 1,
        shots: 120,
        workers: 0,
    }
}

/// A report's canonical form (wall-clock stripped) — the fleet
/// determinism contract's equivalence class.
fn canonical(report: &SweepReport, config: &SweepConfig) -> serde_json::Value {
    canonical_report_value(&report.to_json(config))
}

fn spawn_workers(count: usize) -> (Vec<LocalWorker>, Vec<String>) {
    let workers: Vec<LocalWorker> =
        (0..count).map(|_| LocalWorker::spawn().expect("spawn local worker")).collect();
    let addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    (workers, addrs)
}

#[test]
fn fleet_merge_is_bit_identical_across_worker_counts() {
    let config = tiny_config();
    let baseline = SweepOptions::with_config(config.clone()).run().unwrap();
    let want = canonical(&baseline, &config);
    assert_eq!(baseline.cells, 4);

    for count in [1usize, 4] {
        let (workers, addrs) = spawn_workers(count);
        let report = SweepOptions::with_config(config.clone()).fleet(addrs).run().unwrap();
        for worker in workers {
            worker.shutdown();
        }
        assert_eq!(
            canonical(&report, &config),
            want,
            "fleet of {count} diverged from the in-process sweep"
        );
        // The records really came over the wire: remote per-strategy
        // walls are not measured (0.0), local ones always are.
        assert!(
            report.records.iter().all(|r| r.wall_ms == 0.0),
            "fleet records carry no per-strategy wall"
        );
        assert!(baseline.records.iter().all(|r| r.wall_ms > 0.0));
    }
}

#[test]
fn fleet_survives_a_worker_killed_mid_cell() {
    // A "worker" that accepts the coordinator, reads the start of its
    // first request, and dies — listener first, so the coordinator's
    // reconnect probes are refused instead of hanging in a dead backlog.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let killed_addr = listener.local_addr().unwrap().to_string();
    let killer = thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        drop(listener);
        let mut buf = [0u8; 64];
        let _ = stream.read(&mut buf);
    });

    let config = tiny_config();
    let want = canonical(&SweepOptions::with_config(config.clone()).run().unwrap(), &config);
    let (workers, mut addrs) = spawn_workers(1);
    addrs.insert(0, killed_addr);
    let report = SweepOptions::with_config(config.clone()).fleet(addrs).run().unwrap();
    for worker in workers {
        worker.shutdown();
    }
    killer.join().unwrap();
    assert_eq!(report.cells, 4, "the killed worker's cell was reassigned and completed");
    assert_eq!(canonical(&report, &config), want, "reassignment left no trace in the report");
}

/// A tampering man-in-the-middle: forwards the coordinator's bytes to a
/// real worker verbatim, but corrupts one hex digit of every artifact
/// `key` fingerprint in the worker's response frames.
fn tamper_proxy(upstream: String) -> (String, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || {
        let (client_side, _) = listener.accept().unwrap();
        drop(listener);
        let server_side = TcpStream::connect(&upstream).unwrap();
        let mut c2s_src = client_side.try_clone().unwrap();
        let mut c2s_dst = server_side.try_clone().unwrap();
        let forward = thread::spawn(move || {
            let mut buf = [0u8; 4096];
            loop {
                match c2s_src.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if c2s_dst.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            // The coordinator hung up: close the worker-side socket too
            // (clones share it — dropping is not closing), so the worker
            // can drain its connections and shut down.
            let _ = c2s_dst.shutdown(std::net::Shutdown::Both);
        });
        let mut decoder = FrameDecoder::new();
        let mut from_server = server_side;
        let mut to_client = client_side;
        let mut buf = [0u8; 4096];
        'proxy: loop {
            let n = match from_server.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            decoder.feed(&buf[..n]);
            while let Ok(Some(frame)) = decoder.next_frame() {
                let mut payload = frame.payload;
                if frame.kind == FrameKind::Response {
                    let text = String::from_utf8(payload).expect("response frames are JSON");
                    payload = tamper_keys(&text).into_bytes();
                }
                if to_client.write_all(&Frame::new(frame.kind, payload).encode().unwrap()).is_err()
                {
                    break 'proxy;
                }
            }
        }
        let _ = to_client.shutdown(std::net::Shutdown::Both);
        let _ = from_server.shutdown(std::net::Shutdown::Both);
        let _ = forward.join();
    });
    (addr, handle)
}

/// Flips the first hex digit after every `"key":"` member, leaving the
/// JSON well-formed but the artifact fingerprint unverifiable.
fn tamper_keys(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(at) = rest.find("\"key\":\"") {
        let split = at + "\"key\":\"".len();
        out.push_str(&rest[..split]);
        rest = &rest[split..];
        if let Some(digit) = rest.chars().next() {
            out.push(if digit == '0' { '1' } else { '0' });
            rest = &rest[digit.len_utf8()..];
        }
    }
    out.push_str(rest);
    out
}

#[test]
fn fleet_rejects_tampered_artifacts_and_reraces() {
    let config = tiny_config();
    let want = canonical(&SweepOptions::with_config(config.clone()).run().unwrap(), &config);
    let (workers, addrs) = spawn_workers(1);
    let (proxy_addr, proxy) = tamper_proxy(addrs[0].clone());
    // The only fleet worker lies about every artifact: each response is
    // rejected at fingerprint verification, the cell re-raced
    // in-process, and after three strikes the remaining cells fall back
    // to the coordinator itself.
    let report = SweepOptions::with_config(config.clone()).fleet([proxy_addr]).run().unwrap();
    for worker in workers {
        worker.shutdown();
    }
    proxy.join().unwrap();
    assert_eq!(report.cells, 4);
    assert_eq!(canonical(&report, &config), want, "no tampered artifact reached the report");
}

#[test]
fn fleet_of_unreachable_workers_degrades_to_a_local_sweep() {
    // Bind-then-drop reserves a port nobody listens on.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let config = tiny_config();
    let want = canonical(&SweepOptions::with_config(config.clone()).run().unwrap(), &config);
    let report = SweepOptions::with_config(config.clone())
        .fleet([format!("127.0.0.1:{port}")])
        .run()
        .unwrap();
    assert_eq!(canonical(&report, &config), want, "the local fallback completed the sweep");
}

/// A unique, clean temporary registry directory per test.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("asynd-server-fleet-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf) -> Arc<Registry> {
    let (registry, report) = Registry::open(dir).unwrap();
    assert_eq!(report.skipped, 0, "no unverifiable records in test registries");
    Arc::new(registry)
}

#[test]
fn coordinator_registry_ships_warm_seeds_to_registry_free_workers() {
    let config = tiny_config();
    let local_dir = scratch("local");
    let fleet_dir = scratch("fleet");

    // Seed both registries identically with a cold local pass each.
    let local_registry = open(&local_dir);
    let cold = SweepOptions::with_config(config.clone()).registry(&local_registry).run().unwrap();
    assert_eq!(cold.stored, cold.cells, "every cold cell stored its winner");
    let fleet_registry = open(&fleet_dir);
    let cold_twin =
        SweepOptions::with_config(config.clone()).registry(&fleet_registry).run().unwrap();
    assert_eq!(canonical(&cold_twin, &config), canonical(&cold, &config));

    // Warm reference: a second local pass over the seeded registry.
    let warm_local =
        SweepOptions::with_config(config.clone()).registry(&local_registry).run().unwrap();
    assert_eq!(warm_local.warm_cells, warm_local.cells);

    // Warm fleet pass: the worker has no registry of its own — every
    // warm start below travelled as a `warm_seed` on the wire.
    let (workers, addrs) = spawn_workers(1);
    let warm_fleet = SweepOptions::with_config(config.clone())
        .registry(&fleet_registry)
        .fleet(addrs)
        .run()
        .unwrap();
    for worker in workers {
        worker.shutdown();
    }
    assert_eq!(warm_fleet.warm_cells, warm_fleet.cells, "every cell warm-started remotely");
    assert!(warm_fleet.records.iter().all(|r| r.warm_start));
    assert_eq!(
        canonical(&warm_fleet, &config),
        canonical(&warm_local, &config),
        "shipped warm seeds reproduce the local warm pass exactly"
    );

    fs::remove_dir_all(&local_dir).unwrap();
    fs::remove_dir_all(&fleet_dir).unwrap();
}

//! End-to-end tests of the persistent schedule registry wired through
//! the serving layer: warm starts survive process restarts, the `lookup`
//! op serves cache hits without spending evaluation budget, warm-started
//! batches stay bit-identical for any worker count, and sweeps reuse the
//! registry across passes.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use asynd_registry::Registry;
use asynd_server::protocol::{
    CodeRef, JobRequest, LookupRequest, NoiseSpec, Response, StrategyChoice,
};
use asynd_server::sweep::{SweepConfig, SweepOptions};
use asynd_server::{serve_lines, ScheduleServer, ServerConfig};

/// A unique, clean temporary registry directory per test.
fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("asynd-server-registry-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf) -> Arc<Registry> {
    let (registry, report) = Registry::open(dir).unwrap();
    assert_eq!(report.skipped, 0, "no unverifiable records in test registries");
    Arc::new(registry)
}

/// Jobs of pairwise-distinct tenants (the regime in which registry state
/// is deterministic under any worker interleaving).
fn batch() -> Vec<JobRequest> {
    [
        ("rotated-surface", NoiseSpec::Brisbane, 40),
        ("xzzx", NoiseSpec::Brisbane, 32),
        ("rotated-surface", NoiseSpec::Scaled(0.003), 40),
        ("hexagonal-color", NoiseSpec::Brisbane, 120),
    ]
    .into_iter()
    .enumerate()
    .map(|(n, (family, noise, budget))| JobRequest {
        id: format!("job-{n}"),
        code: CodeRef { family: family.to_string(), index: 0 },
        noise,
        strategy: if budget > 100 { StrategyChoice::Portfolio } else { StrategyChoice::Anneal },
        budget,
        shots: 150,
        seed: 7 + n as u64,
        warm_seed: None,
    })
    .collect()
}

/// The determinism-contract projection of a response (everything except
/// wall-clock and cache counters).
fn view(response: &Response) -> String {
    match response {
        Response::Ok(outcome) => format!(
            "id={} tenant={} winner={} key={} spent={} warm={}",
            outcome.id,
            outcome.tenant,
            outcome.strategy,
            outcome.artifact.key().to_hex(),
            outcome.spent,
            outcome.warm_start,
        ),
        other => format!("{other:?}"),
    }
}

#[test]
fn restarted_servers_warm_start_from_stored_winners() {
    let dir = scratch("restart");

    // Cold pass: nothing stored yet, every job runs cold and stores its
    // winner.
    let cold_views: Vec<String> = {
        let server = ScheduleServer::start_with_registry(ServerConfig::default(), Some(open(&dir)));
        let responses = server.run_batch(batch());
        for response in &responses {
            match response {
                Response::Ok(outcome) => assert!(!outcome.warm_start, "first pass is cold"),
                other => panic!("job failed: {other:?}"),
            }
        }
        let views = responses.iter().map(view).collect();
        server.shutdown();
        views
    };
    assert_eq!(open(&dir).stats().entries, 4, "every tenant stored its winner");

    // Restarted server (fresh process state, same registry dir): every
    // job warm-starts, and the result set is bit-identical for any
    // worker count because the registry state is fixed and tenants are
    // distinct.
    let mut warm_views: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let server = ScheduleServer::start_with_registry(
            ServerConfig { workers, ..ServerConfig::default() },
            Some(open(&dir)),
        );
        let responses = server.run_batch(batch());
        for response in &responses {
            match response {
                Response::Ok(outcome) => {
                    assert!(outcome.warm_start, "restart must warm-start {}", outcome.id);
                    assert!(
                        outcome.spent <= outcome.granted,
                        "warm start exceeded the budget meters"
                    );
                }
                other => panic!("job failed under {workers} workers: {other:?}"),
            }
        }
        warm_views.push(responses.iter().map(view).collect());
        server.shutdown();
    }
    assert_eq!(warm_views[0], warm_views[1], "1 and 2 workers disagree warm");
    assert_eq!(warm_views[0], warm_views[2], "1 and 4 workers disagree warm");

    // Warm results are a different deterministic computation than cold
    // ones (same ids and tenants, warm flag set).
    assert_eq!(cold_views.len(), warm_views[0].len());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lookup_op_serves_stored_artifacts_without_synthesis() {
    let dir = scratch("lookup");
    let server = ScheduleServer::start_with_registry(
        ServerConfig { workers: 1, ..ServerConfig::default() },
        Some(open(&dir)),
    );
    let probe = LookupRequest {
        id: "probe".into(),
        code: CodeRef { family: "rotated-surface".into(), index: 0 },
        noise: NoiseSpec::Brisbane,
        shots: 150,
    };

    // Miss before anything is stored.
    match server.lookup(&probe) {
        Response::Lookup { id, tenant, artifact } => {
            assert_eq!(id, "probe");
            assert!(tenant.contains("rotated-surface[0]"));
            assert!(artifact.is_none(), "empty registry must miss");
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // Synthesize once; the winner lands in the registry.
    let job = JobRequest {
        id: "fill".into(),
        code: probe.code.clone(),
        noise: probe.noise.clone(),
        strategy: StrategyChoice::Anneal,
        budget: 40,
        shots: 150,
        seed: 3,
        warm_seed: None,
    };
    let reference = match server.submit(job).unwrap().wait() {
        Response::Ok(outcome) => outcome,
        other => panic!("job failed: {other:?}"),
    };

    // Hit: the stored artifact comes back bit-identical, and no
    // evaluation budget moves (lookup is a map read).
    match server.lookup(&probe) {
        Response::Lookup { artifact: Some(artifact), tenant, .. } => {
            assert_eq!(tenant, reference.tenant);
            assert_eq!(*artifact, reference.artifact, "lookup returns the stored winner");
        }
        other => panic!("unexpected response: {other:?}"),
    }
    let registry_stats = server.registry().unwrap().stats();
    assert_eq!(registry_stats.hits, 1);

    // Probes that synthesize could never have served are clear errors,
    // not silent misses: unknown family, zero shots, invalid noise.
    let mut bad = probe.clone();
    bad.code.family = "no-such-family".into();
    match server.lookup(&bad) {
        Response::Error { error, .. } => assert!(error.contains("unknown code family")),
        other => panic!("unexpected response: {other:?}"),
    }
    let mut zero_shots = probe.clone();
    zero_shots.shots = 0;
    match server.lookup(&zero_shots) {
        Response::Error { error, .. } => assert!(error.contains("shots"), "error: {error}"),
        other => panic!("unexpected response: {other:?}"),
    }
    let mut bad_noise = probe.clone();
    bad_noise.noise = NoiseSpec::Scaled(1.5);
    match server.lookup(&bad_noise) {
        Response::Error { .. } => {}
        other => panic!("unexpected response: {other:?}"),
    }

    // The same probe over the wire round-trips through serve_lines.
    let line = serde_json::to_string(&probe.to_json()).unwrap();
    let mut output = Vec::new();
    serve_lines(format!("{line}\n").as_bytes(), &mut output, &server).unwrap();
    let text = String::from_utf8(output).unwrap();
    match Response::parse(text.lines().next().unwrap()).unwrap() {
        Response::Lookup { artifact: Some(artifact), .. } => {
            assert_eq!(*artifact, reference.artifact, "wire lookup round-trips verified");
        }
        other => panic!("unexpected response: {other:?}"),
    }

    server.shutdown();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweeps_reuse_one_registry_across_passes() {
    let dir = scratch("sweep");
    let config = SweepConfig {
        seed: 5,
        error_rates: vec![3e-3, 7.4e-3],
        families: vec!["rotated-surface".into(), "xzzx".into()],
        max_qubits: 13,
        entries_per_family: 1,
        budget_multiplier: 1,
        shots: 100,
        workers: 0,
    };

    let registry = open(&dir);
    let cold = SweepOptions::with_config(config.clone()).registry(&registry).run().unwrap();
    let cells = cold.cells;
    assert_eq!(cells, 4, "2 families x 1 entry x 2 rates");
    assert_eq!(cold.warm_cells, 0, "first pass has nothing to warm from");
    assert_eq!(cold.stored, cells, "every cell stored its winner");
    assert!(cold.records.iter().all(|r| !r.warm_start));
    drop(registry);

    // Snapshot the registry so warm determinism can be checked from two
    // *identical* starting states (a warm pass may store new winners, so
    // back-to-back passes over one live directory are allowed to
    // differ).
    let snapshot = scratch("sweep-snapshot");
    fs::create_dir_all(&snapshot).unwrap();
    for entry in fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), snapshot.join(entry.file_name())).unwrap();
    }

    // Second pass, fresh registry handle over the same directory: every
    // repeated (code, rate) cell warm-starts.
    let registry = open(&dir);
    let warm = SweepOptions::with_config(config.clone()).registry(&registry).run().unwrap();
    assert_eq!(warm.warm_cells, cells, "every repeated cell warm-started");
    assert!(warm.records.iter().all(|r| r.warm_start));

    // Warm passes are deterministic: identical registry state in, the
    // same records out (the snapshot pass also runs with a different
    // worker count to pin thread-count independence).
    let snapshot_registry = open(&snapshot);
    let twin = SweepOptions::with_config(SweepConfig { workers: 2, ..config.clone() })
        .registry(&snapshot_registry)
        .run()
        .unwrap();
    let key = |report: &asynd_server::sweep::SweepReport| -> Vec<String> {
        report
            .records
            .iter()
            .map(|r| {
                format!(
                    "{}|{}|{}|{}|{}",
                    r.code, r.error_rate, r.strategy, r.schedule_key, r.p_overall
                )
            })
            .collect()
    };
    assert_eq!(key(&warm), key(&twin), "identical registry states give identical warm sweeps");

    // The registry still verifies end-to-end after both passes.
    let audit = registry.verify().unwrap();
    assert_eq!(audit.invalid, 0);
    assert!(audit.valid >= cells);
    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&snapshot).unwrap();
}

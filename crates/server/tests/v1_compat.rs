//! Protocol v1 compatibility: a JSON-lines client talking to the reactor
//! (`serve_tcp`) must receive byte-identical response lines, in the same
//! order, as the same script run through the reference implementation
//! (`serve_lines`) — modulo the explicitly-volatile observability fields
//! (`wall_ms`, `cache`).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use asynd_server::{serve_lines, serve_tcp, ScheduleServer, ServerConfig};
use serde_json::{Map, Value};

/// A session exercising every v1 shape: probes, a pipelined pair of jobs,
/// a parse error mid-stream, a lookup miss, and a final shutdown.
fn script() -> String {
    let job = |id: &str, seed: u64| {
        format!(
            "{{\"id\":\"{id}\",\"code\":{{\"family\":\"rotated-surface\",\"index\":0}},\
             \"noise\":{{\"kind\":\"scaled\",\"p\":0.004}},\"strategy\":\"beam\",\"budget\":12,\
             \"shots\":100,\"seed\":{seed}}}"
        )
    };
    [
        "{\"op\":\"ping\"}".to_string(),
        job("compat-1", 11),
        "this is not json".to_string(),
        job("compat-2", 12),
        "{\"op\":\"lookup\",\"id\":\"probe\",\"code\":{\"family\":\"rotated-surface\",\
         \"index\":0},\"noise\":{\"kind\":\"scaled\",\"p\":0.004},\"shots\":100}"
            .to_string(),
        "{\"op\":\"shutdown\"}".to_string(),
    ]
    .join("\n")
        + "\n"
}

/// Re-serializes a response line with the volatile fields removed. The
/// vendored `serde_json` preserves insertion order, so everything else —
/// key order included — must match byte for byte.
fn normalize(line: &str) -> String {
    fn strip(value: &Value) -> Value {
        match value {
            Value::Object(map) => {
                let mut out = Map::new();
                for (key, entry) in map.iter() {
                    if key == "wall_ms" || key == "cache" {
                        continue;
                    }
                    out.insert(key.as_str(), strip(entry));
                }
                Value::Object(out)
            }
            other => other.clone(),
        }
    }
    let parsed = serde_json::from_str(line).expect("response line must be valid JSON");
    serde_json::to_string(&strip(&parsed)).unwrap()
}

fn run_through_serve_lines() -> Vec<String> {
    let server = ScheduleServer::start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let mut output: Vec<u8> = Vec::new();
    serve_lines(script().as_bytes(), &mut output, &server).expect("serve_lines failed");
    server.shutdown();
    String::from_utf8(output).unwrap().lines().map(normalize).collect()
}

fn run_through_reactor() -> Vec<String> {
    let server = ScheduleServer::start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let address = listener.local_addr().unwrap();
    let lines = std::thread::scope(|scope| {
        let server_ref = &server;
        let acceptor = scope.spawn(move || serve_tcp(server_ref, listener));
        let stream = TcpStream::connect(address).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(script().as_bytes()).unwrap();
        writer.flush().unwrap();
        let lines: Vec<String> =
            BufReader::new(&stream).lines().map(|line| normalize(&line.unwrap())).collect();
        acceptor.join().unwrap().expect("reactor loop failed");
        lines
    });
    server.shutdown();
    lines
}

#[test]
fn v1_clients_get_byte_identical_responses_from_the_reactor() {
    let reference = run_through_serve_lines();
    let reactor = run_through_reactor();
    // 2 probes + 2 jobs + 1 parse error + 1 shutdown ack.
    assert_eq!(reference.len(), 6, "reference session shape changed: {reference:?}");
    assert_eq!(reactor, reference, "reactor v1 responses diverge from serve_lines");
}

//! The reactor extends the serving layer's determinism contract to its
//! event-loop deployment: the same jobs, submitted over TCP by several
//! concurrent connections, produce bit-identical results whether the
//! listener is served by 1, 2 or 4 reactor threads.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use asynd_server::protocol::{CodeRef, JobRequest, NoiseSpec, Response, StrategyChoice};
use asynd_server::{serve_tcp_with, ReactorOptions, ScheduleServer, ServerConfig};

/// Three connections' worth of jobs: enough concurrency that a
/// multi-reactor server actually spreads connections across threads, with
/// shared tenants so cache racing is exercised too.
fn sessions() -> Vec<Vec<JobRequest>> {
    let mut sessions = Vec::new();
    for session in 0..3u64 {
        let mut jobs = Vec::new();
        for (slot, (family, strategy, budget)) in [
            ("rotated-surface", StrategyChoice::Beam, 24),
            ("xzzx", StrategyChoice::Anneal, 20),
            ("rotated-surface", StrategyChoice::LowestDepth, 4),
        ]
        .into_iter()
        .enumerate()
        {
            jobs.push(JobRequest {
                id: format!("s{session}-j{slot}"),
                code: CodeRef { family: family.to_string(), index: 0 },
                noise: NoiseSpec::Scaled(0.002 + 0.001 * session as f64),
                strategy,
                budget,
                shots: 120,
                seed: 0xD5 + slot as u64, // same seeds across sessions: shared tenants,
                warm_seed: None,
            });
        }
        sessions.push(jobs);
    }
    sessions
}

/// The determinism-contract projection: everything except wall-clock and
/// cache counters (observability data, explicitly outside the contract).
fn contract_view(response: &Response) -> String {
    match response {
        Response::Ok(outcome) => format!(
            "id={} tenant={} winner={} key={} p={} granted={} spent={}",
            outcome.id,
            outcome.tenant,
            outcome.strategy,
            outcome.artifact.key().to_hex(),
            outcome.artifact.estimate.any_failures,
            outcome.granted,
            outcome.spent,
        ),
        other => format!("{other:?}"),
    }
}

/// Runs every session against a freshly served instance with `reactors`
/// reactor threads and returns `(job id, contract view)` pairs sorted by
/// id (sessions run concurrently, so only per-id comparison is meaningful).
fn run_with_reactors(reactors: usize) -> Vec<(String, String)> {
    let server = ScheduleServer::start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let address = listener.local_addr().unwrap();

    let mut views = std::thread::scope(|scope| {
        let server_ref = &server;
        let acceptor =
            scope.spawn(move || serve_tcp_with(server_ref, listener, ReactorOptions { reactors }));

        let clients: Vec<_> = sessions()
            .into_iter()
            .map(|jobs| {
                scope.spawn(move || {
                    let stream = TcpStream::connect(address).unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    for job in &jobs {
                        writeln!(writer, "{}", serde_json::to_string(&job.to_json()).unwrap())
                            .unwrap();
                    }
                    writer.flush().unwrap();
                    stream.shutdown(std::net::Shutdown::Write).unwrap();
                    let mut views = Vec::new();
                    for line in BufReader::new(&stream).lines() {
                        let response = Response::parse(&line.unwrap()).unwrap();
                        let id = match &response {
                            Response::Ok(outcome) => outcome.id.clone(),
                            other => panic!("job failed under {reactors} reactors: {other:?}"),
                        };
                        views.push((id, contract_view(&response)));
                    }
                    assert_eq!(views.len(), jobs.len(), "missing responses");
                    views
                })
            })
            .collect();
        let views: Vec<(String, String)> =
            clients.into_iter().flat_map(|c| c.join().unwrap()).collect();

        // All sessions drained: stop the server via the protocol.
        let stream = TcpStream::connect(address).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        let mut ack = String::new();
        BufReader::new(&stream).read_line(&mut ack).unwrap();
        assert!(ack.contains("\"op\":\"shutdown\""), "no shutdown ack: {ack:?}");
        acceptor.join().unwrap().expect("reactor loop failed");
        views
    });
    server.shutdown();
    views.sort();
    views
}

#[test]
fn results_are_identical_for_1_2_and_4_reactors() {
    let one = run_with_reactors(1);
    assert_eq!(one.len(), 9);
    let two = run_with_reactors(2);
    let four = run_with_reactors(4);
    assert_eq!(one, two, "1 and 2 reactors disagree");
    assert_eq!(one, four, "1 and 4 reactors disagree");
}

//! End-to-end protocol round-trip: submit → JSON response line →
//! deserialize → the reconstructed schedule is the schedule the server
//! synthesized (fingerprint match + validity against the code), over both
//! the in-process API and the TCP transport.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use asynd_codes::catalog::family_by_name;
use asynd_server::protocol::{CodeRef, JobRequest, NoiseSpec, Response, StrategyChoice};
use asynd_server::{serve_tcp, ScheduleServer, ServerConfig};

fn request(id: &str) -> JobRequest {
    JobRequest {
        id: id.to_string(),
        code: CodeRef { family: "rotated-surface".into(), index: 0 },
        noise: NoiseSpec::Scaled(0.004),
        strategy: StrategyChoice::Beam,
        budget: 24,
        shots: 200,
        seed: 17,
        warm_seed: None,
    }
}

/// Checks a parsed response against the live outcome: same artifact, and
/// the artifact's schedule key matches a recomputation from its checks.
fn assert_roundtrip(line: &str, reference: &Response) {
    let parsed = Response::parse(line).expect("response line parses");
    let (parsed, reference) = match (parsed, reference) {
        (Response::Ok(parsed), Response::Ok(reference)) => (parsed, reference),
        (parsed, _) => panic!("unexpected response: {parsed:?}"),
    };
    assert_eq!(parsed.id, reference.id);
    assert_eq!(parsed.tenant, reference.tenant);
    assert_eq!(parsed.strategy, reference.strategy);
    assert_eq!(parsed.granted, reference.granted);
    assert_eq!(parsed.spent, reference.spent);
    assert_eq!(parsed.strategies, reference.strategies);
    // The artifact round-trips exactly: schedule, estimate, fingerprint.
    assert_eq!(parsed.artifact, reference.artifact);
    assert_eq!(parsed.artifact.key(), reference.artifact.schedule.key());
    // The reconstructed schedule is valid for the code it claims.
    let code = family_by_name("rotated-surface").unwrap()[0].code.clone();
    parsed.artifact.schedule.validate(&code).expect("deserialized schedule validates");
    assert_eq!(parsed.artifact.estimate.shots, 200, "estimate carries the tenant's shot budget");
}

#[test]
fn in_process_submit_artifact_roundtrip() {
    let server = ScheduleServer::start(ServerConfig { workers: 1, ..ServerConfig::default() });
    let reference = server.submit(request("rt-1")).unwrap().wait();
    let line = reference.to_json();
    assert_roundtrip(&line, &reference);
    server.shutdown();
}

#[test]
fn tcp_transport_roundtrip_and_shutdown() {
    let server = ScheduleServer::start(ServerConfig { workers: 2, ..ServerConfig::default() });
    // Reference result via the in-process API (deterministic, so the TCP
    // path must reproduce it bit-for-bit).
    let reference = server.submit(request("rt-tcp")).unwrap().wait();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let address = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = &server;
        let acceptor = scope.spawn(move || serve_tcp(server, listener));

        let stream = TcpStream::connect(address).expect("connect to the server");
        let mut writer = stream.try_clone().unwrap();
        let request_line = serde_json::to_string(&request("rt-tcp").to_json()).unwrap();
        writeln!(writer, "{{\"op\":\"ping\"}}").unwrap();
        writeln!(writer, "{request_line}").unwrap();
        writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();

        let mut lines = BufReader::new(&stream).lines();
        let pong = lines.next().expect("pong line").unwrap();
        assert_eq!(Response::parse(&pong).unwrap(), Response::Pong);
        let job_line = lines.next().expect("job line").unwrap();
        assert_roundtrip(&job_line, &reference);
        let bye = lines.next().expect("shutdown ack").unwrap();
        assert_eq!(Response::parse(&bye).unwrap(), Response::ShuttingDown);

        acceptor.join().unwrap().expect("accept loop exits cleanly");
    });
    server.shutdown();
}

#[test]
fn shutdown_from_a_peer_that_hangs_up_still_stops_the_server() {
    let server = ScheduleServer::start(ServerConfig { workers: 1, ..ServerConfig::default() });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let address = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = &server;
        let acceptor = scope.spawn(move || serve_tcp(server, listener));
        {
            let stream = TcpStream::connect(address).unwrap();
            let mut writer = stream.try_clone().unwrap();
            writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
            writer.flush().unwrap();
            // Hang up without reading the ack: the intent must survive.
        }
        acceptor.join().unwrap().expect("accept loop exits despite the abrupt hangup");
    });
    server.shutdown();
}

#[test]
fn concurrent_tcp_sessions_share_tenants() {
    let server = ScheduleServer::start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let address = listener.local_addr().unwrap();
    let session = |id: String| {
        let stream = TcpStream::connect(address).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let line = serde_json::to_string(&request(&id).to_json()).unwrap();
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = BufReader::new(&stream).lines();
        let response = lines.next().expect("response line").unwrap();
        match Response::parse(&response).unwrap() {
            Response::Ok(outcome) => {
                assert_eq!(outcome.id, id);
                outcome.artifact.key().to_hex()
            }
            other => panic!("unexpected response: {other:?}"),
        }
    };
    std::thread::scope(|scope| {
        let server_ref = &server;
        let acceptor = scope.spawn(move || serve_tcp(server_ref, listener));

        let session = &session;
        let a = scope.spawn(move || session("conn-a".into()));
        let b = scope.spawn(move || session("conn-b".into()));
        let (key_a, key_b) = (a.join().unwrap(), b.join().unwrap());
        assert_eq!(key_a, key_b, "same job shape wins the same schedule on both sessions");

        // Stop the accept loop, reading the ack before hanging up.
        let stream = TcpStream::connect(address).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        let ack = BufReader::new(&stream).lines().next().expect("shutdown ack").unwrap();
        assert_eq!(Response::parse(&ack).unwrap(), Response::ShuttingDown);
        drop(writer);
        drop(stream);
        acceptor.join().unwrap().unwrap();
    });
    // Both sessions landed on one tenant.
    assert_eq!(server.tenants(), 1);
    server.shutdown();
}

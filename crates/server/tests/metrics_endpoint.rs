//! The live `metrics` protocol op, end to end over TCP: run real jobs
//! through a served instance, scrape `{"op":"metrics"}` as a client
//! would, and check the job-lifecycle histograms in the parsed snapshot
//! account for exactly the jobs submitted.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use asynd_server::protocol::{CodeRef, JobRequest, NoiseSpec, Response, StrategyChoice};
use asynd_server::{serve_tcp, ScheduleServer, ServerConfig};
use asynd_telemetry::MetricsRegistry;

fn request(id: &str, seed: u64) -> JobRequest {
    JobRequest {
        id: id.to_string(),
        code: CodeRef { family: "rotated-surface".into(), index: 0 },
        noise: NoiseSpec::Scaled(0.004),
        strategy: StrategyChoice::Beam,
        budget: 16,
        shots: 100,
        seed,
        warm_seed: None,
    }
}

#[test]
fn metrics_op_over_tcp_reports_the_jobs_that_ran() {
    // A private registry keeps the counts hermetic: nothing else in the
    // process can inflate them.
    let telemetry = Arc::new(MetricsRegistry::new());
    let server = ScheduleServer::start_with(
        ServerConfig { workers: 2, ..ServerConfig::default() },
        None,
        Arc::clone(&telemetry),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let address = listener.local_addr().unwrap();
    let jobs = 3usize;

    std::thread::scope(|scope| {
        let server_ref = &server;
        let acceptor = scope.spawn(move || serve_tcp(server_ref, listener));

        // Session 1: submit the jobs and drain every response, so the
        // lifecycle histograms are settled before the scrape.
        {
            let stream = TcpStream::connect(address).unwrap();
            let mut writer = stream.try_clone().unwrap();
            for job in 0..jobs {
                let line =
                    serde_json::to_string(&request(&format!("m-{job}"), 17 + job as u64).to_json())
                        .unwrap();
                writeln!(writer, "{line}").unwrap();
            }
            writer.flush().unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut completed = 0usize;
            for line in BufReader::new(&stream).lines() {
                match Response::parse(&line.unwrap()).unwrap() {
                    Response::Ok(outcome) => {
                        assert!(outcome.id.starts_with("m-"));
                        completed += 1;
                    }
                    other => panic!("unexpected response: {other:?}"),
                }
            }
            assert_eq!(completed, jobs);
        }

        // Session 2: scrape the metrics op exactly as `asynd metrics`
        // does — one request line, half-close, one response line.
        let stream = TcpStream::connect(address).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{{\"op\":\"metrics\",\"id\":\"scrape-1\"}}").unwrap();
        writer.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let line = BufReader::new(&stream).lines().next().expect("metrics line").unwrap();
        let (id, snapshot, tenants) = match Response::parse(&line).expect("metrics parses") {
            Response::Metrics { id, snapshot, tenants } => (id, snapshot, tenants),
            other => panic!("unexpected response: {other:?}"),
        };
        assert_eq!(id, "scrape-1");

        // Job-lifecycle accounting: every submitted job shows up once in
        // the queue-wait and wall histograms, and every one synthesized.
        assert_eq!(snapshot.counters["asynd_jobs_submitted_total"], jobs as u64);
        assert_eq!(snapshot.counters["asynd_jobs_completed_total"], jobs as u64);
        assert_eq!(snapshot.counters.get("asynd_jobs_failed_total").copied().unwrap_or(0), 0);
        assert_eq!(snapshot.histograms["asynd_job_queue_wait_us"].count, jobs as u64);
        assert_eq!(snapshot.histograms["asynd_job_wall_us"].count, jobs as u64);
        assert_eq!(snapshot.histograms["asynd_job_synthesis_us"].count, jobs as u64);
        // All three jobs share one tenant shape, and the snapshot carries
        // its evaluator cache stats.
        assert_eq!(snapshot.gauges["asynd_queue_depth"], 0);
        assert_eq!(snapshot.gauges["asynd_jobs_inflight"], 0);
        assert_eq!(tenants.len(), 1);
        let (tenant, cache) = &tenants[0];
        assert!(tenant.contains("rotated-surface"), "tenant key names the code: {tenant}");
        assert!(cache.misses > 0, "synthesis evaluated fresh schedules");
        // The portfolio metered every evaluation it charged.
        let beam_evals = snapshot
            .counters
            .get("asynd_strategy_evals_total{strategy=\"beam\"}")
            .copied()
            .unwrap_or(0);
        assert!(beam_evals > 0, "beam strategy evaluations are metered");

        // A scrape is read-only: a second one sees identical job counts.
        let stream = TcpStream::connect(address).unwrap();
        let mut writer = stream.try_clone().unwrap();
        writeln!(writer, "{{\"op\":\"metrics\",\"id\":\"scrape-2\"}}").unwrap();
        writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
        writer.flush().unwrap();
        let mut lines = BufReader::new(&stream).lines();
        let second = lines.next().expect("second metrics line").unwrap();
        match Response::parse(&second).expect("second scrape parses") {
            Response::Metrics { snapshot: again, .. } => {
                assert_eq!(again.counters["asynd_jobs_submitted_total"], jobs as u64);
                assert_eq!(again.histograms["asynd_job_wall_us"].count, jobs as u64);
            }
            other => panic!("unexpected response: {other:?}"),
        }
        let ack = lines.next().expect("shutdown ack").unwrap();
        assert_eq!(Response::parse(&ack).unwrap(), Response::ShuttingDown);
        acceptor.join().unwrap().expect("accept loop exits cleanly");
    });
    server.shutdown();
}

//! The serving layer's headline guarantee: the same job set produces
//! bit-identical results — winning schedule keys, estimates, budget
//! accounting — for any worker-thread count, and for repeated submission
//! against a warm tenant cache.

use asynd_server::protocol::{CodeRef, JobRequest, NoiseSpec, Response, StrategyChoice};
use asynd_server::sweep::{SweepConfig, SweepOptions};
use asynd_server::{ScheduleServer, ServerConfig};

/// A small but non-trivial batch: two code families × two error models,
/// mixing the full portfolio race with single-strategy jobs.
fn batch() -> Vec<JobRequest> {
    let mut requests = Vec::new();
    for (family, strategy, budget) in [
        // Steane: 24 checks -> MCTS floor 26 -> portfolio budget >= 4*26.
        ("hexagonal-color", StrategyChoice::Portfolio, 120),
        ("rotated-surface", StrategyChoice::Anneal, 40),
        ("xzzx", StrategyChoice::Beam, 32),
        ("rotated-surface", StrategyChoice::LowestDepth, 4),
    ] {
        for (n, noise) in [NoiseSpec::Brisbane, NoiseSpec::Scaled(0.003)].into_iter().enumerate() {
            requests.push(JobRequest {
                id: format!("{family}/{}/{n}", strategy.token()),
                code: CodeRef { family: family.to_string(), index: 0 },
                noise,
                strategy,
                budget,
                shots: 150,
                seed: 0xA11CE + n as u64,
                warm_seed: None,
            });
        }
    }
    requests
}

/// The determinism-contract projection of a response: everything except
/// wall-clock and cache counters.
fn contract_view(response: &Response) -> String {
    match response {
        Response::Ok(outcome) => {
            let strategies: Vec<String> = outcome
                .strategies
                .iter()
                .map(|s| {
                    format!(
                        "{}:{}:{}:{}:{}:{}",
                        s.name, s.key, s.p_overall, s.depth, s.evaluations, s.winner
                    )
                })
                .collect();
            format!(
                "id={} tenant={} winner={} key={} shots={} xf={} zf={} af={} \
                 granted={} spent={} strategies=[{}]",
                outcome.id,
                outcome.tenant,
                outcome.strategy,
                outcome.artifact.key().to_hex(),
                outcome.artifact.estimate.shots,
                outcome.artifact.estimate.x_failures,
                outcome.artifact.estimate.z_failures,
                outcome.artifact.estimate.any_failures,
                outcome.granted,
                outcome.spent,
                strategies.join(","),
            )
        }
        Response::Error { id, error } => format!("id={id} error={error}"),
        other => format!("{other:?}"),
    }
}

#[test]
fn results_are_identical_for_1_2_and_4_workers() {
    let mut views: Vec<Vec<String>> = Vec::new();
    for workers in [1usize, 2, 4] {
        let server = ScheduleServer::start(ServerConfig {
            workers,
            queue_capacity: 3, // smaller than the batch: exercises backpressure
            ..ServerConfig::default()
        });
        let responses = server.run_batch(batch());
        assert_eq!(responses.len(), 8);
        for response in &responses {
            assert!(
                matches!(response, Response::Ok(_)),
                "job failed under {workers} workers: {response:?}"
            );
        }
        views.push(responses.iter().map(contract_view).collect());
        server.shutdown();
    }
    assert_eq!(views[0], views[1], "1 and 2 workers disagree");
    assert_eq!(views[0], views[2], "1 and 4 workers disagree");
}

#[test]
fn warm_tenant_caches_do_not_change_results() {
    let server = ScheduleServer::start(ServerConfig { workers: 2, ..ServerConfig::default() });
    let cold: Vec<String> = server.run_batch(batch()).iter().map(contract_view).collect();
    // Same batch again: every evaluation now hits the tenant caches.
    let warm: Vec<String> = server.run_batch(batch()).iter().map(contract_view).collect();
    assert_eq!(cold, warm, "memoised estimates must be what fresh ones were");
    // Distinct tenants stayed sharded: 3 families x 2 error models
    // (lowest-depth shares the rotated-surface tenants with anneal).
    assert_eq!(server.tenants(), 6);
    server.shutdown();
}

#[test]
fn sweep_records_are_identical_for_any_worker_count() {
    let config = |workers: usize| SweepConfig {
        seed: 99,
        error_rates: vec![2e-3, 6e-3],
        families: vec!["rotated-surface".into(), "xzzx".into()],
        max_qubits: 13,
        entries_per_family: 1,
        budget_multiplier: 1,
        shots: 100,
        workers,
    };
    let view = |workers: usize| -> Vec<String> {
        SweepOptions::with_config(config(workers))
            .run()
            .unwrap()
            .records
            .iter()
            .map(|r| {
                format!(
                    "{}|{}|{}|{}|{}|{}|{}|{}",
                    r.family,
                    r.code,
                    r.error_rate,
                    r.strategy,
                    r.schedule_key,
                    r.p_overall,
                    r.evaluations,
                    r.winner
                )
            })
            .collect()
    };
    let serial = view(1);
    assert_eq!(serial, view(2), "sweep differs between 1 and 2 workers");
    assert_eq!(serial, view(4), "sweep differs between 1 and 4 workers");
}

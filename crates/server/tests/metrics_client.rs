//! `MetricsClient` (the engine of `asynd metrics --watch`) must reuse
//! one TCP connection across polls — the reactor's per-reactor accept
//! counter is the witness — and must surface a clean, reconnectable
//! error when the server goes away.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use asynd_server::protocol::Response;
use asynd_server::{serve_tcp, MetricsClient, ScheduleServer, ServerConfig};
use asynd_telemetry::MetricsRegistry;

#[test]
fn watch_scrapes_share_one_connection() {
    let telemetry = Arc::new(MetricsRegistry::new());
    let server = ScheduleServer::start_with(
        ServerConfig { workers: 1, ..ServerConfig::default() },
        None,
        Arc::clone(&telemetry),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let address = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server_ref = &server;
        let acceptor = scope.spawn(move || serve_tcp(server_ref, listener));

        let mut client = MetricsClient::new(address.to_string());
        assert!(!client.connected(), "nothing connects before the first scrape");
        for scrape in 0..3 {
            match client.scrape() {
                Ok(Response::Metrics { .. }) => {}
                other => panic!("scrape {scrape} failed: {other:?}"),
            }
            assert!(client.connected());
        }
        // Three scrapes, one accept: the reactor counted exactly one
        // connection from the client (plus none from anyone else).
        let accepted = telemetry
            .snapshot()
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("asynd_reactor_accepted_total"))
            .map(|(_, value)| *value)
            .sum::<u64>();
        assert_eq!(accepted, 1, "watch mode must not reconnect per poll");

        drop(client); // half of the shutdown handshake below
        let mut stream = TcpStream::connect(address).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut ack = String::new();
        stream.read_to_string(&mut ack).unwrap();
        acceptor.join().unwrap().expect("reactor loop failed");
    });
    server.shutdown();
}

#[test]
fn a_lost_server_yields_a_reconnect_hint_not_a_wedged_client() {
    // Bind, learn the address, and immediately close the listener: the
    // first scrape must fail with a message that names the address.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let address = listener.local_addr().unwrap().to_string();
    drop(listener);
    let mut client = MetricsClient::new(address.clone());
    let error = client.scrape().expect_err("scrape against a dead server must fail");
    assert!(error.contains(&address), "error does not name the address: {error}");
    assert!(!client.connected(), "a failed scrape must drop the connection");
}

//! Adversarial protocol-v2 sessions against a live reactor: truncated
//! frames, oversized declared lengths, wrong-direction frame kinds,
//! interleaved cancellation and mid-stream disconnects. The invariant
//! throughout: one misbehaving connection gets a structured `Goodbye`
//! (or a silent close) and the server keeps serving everyone else.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use asynd_net::frame::{Frame, FrameDecoder, FrameKind, FRAME_MAGIC};
use asynd_server::protocol::{CancelRequest, ProgressUpdate, Response};
use asynd_server::{serve_tcp, ScheduleServer, ServerConfig};

/// Runs `session` against a freshly served single-reactor instance, then
/// shuts the server down over a clean v1 connection.
fn with_server(workers: usize, session: impl FnOnce(std::net::SocketAddr)) {
    let server = ScheduleServer::start(ServerConfig { workers, ..ServerConfig::default() });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let address = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server_ref = &server;
        let acceptor = scope.spawn(move || serve_tcp(server_ref, listener));
        session(address);
        let mut stream = TcpStream::connect(address).unwrap();
        stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut ack = String::new();
        stream.read_to_string(&mut ack).unwrap();
        assert!(ack.contains("\"op\":\"shutdown\""), "no shutdown ack: {ack:?}");
        acceptor.join().unwrap().expect("reactor loop failed");
    });
    server.shutdown();
}

fn request_frame(json: &str) -> Vec<u8> {
    Frame::new(FrameKind::Request, json.as_bytes().to_vec()).encode().unwrap()
}

fn synthesize_json(id: &str, budget: u64) -> String {
    format!(
        "{{\"id\":\"{id}\",\"code\":{{\"family\":\"rotated-surface\",\"index\":0}},\
         \"noise\":{{\"kind\":\"scaled\",\"p\":0.004}},\"strategy\":\"beam\",\"budget\":{budget},\
         \"shots\":100,\"seed\":5}}"
    )
}

/// Reads frames until EOF and returns them; panics on a decode error
/// (the server must never send malformed bytes).
fn read_frames_to_eof(stream: &mut TcpStream) -> Vec<Frame> {
    let mut decoder = FrameDecoder::new();
    let mut frames = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = stream.read(&mut buf).expect("read from server");
        if n == 0 {
            break;
        }
        decoder.feed(&buf[..n]);
        while let Some(frame) = decoder.next_frame().expect("server sent a malformed frame") {
            frames.push(frame);
        }
    }
    assert_eq!(decoder.buffered(), 0, "server sent a trailing partial frame");
    frames
}

/// The server still answers a fresh, well-behaved connection.
fn assert_still_serving(address: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(address).unwrap();
    stream.write_all(&request_frame("{\"op\":\"ping\"}")).unwrap();
    stream.write_all(&Frame::new(FrameKind::Goodbye, b"{}".to_vec()).encode().unwrap()).unwrap();
    let frames = read_frames_to_eof(&mut stream);
    assert_eq!(frames.len(), 1, "expected exactly the pong: {frames:?}");
    assert!(matches!(
        Response::parse(std::str::from_utf8(&frames[0].payload).unwrap()),
        Ok(Response::Pong)
    ));
}

fn goodbye_detail(frame: &Frame) -> String {
    assert_eq!(frame.kind, FrameKind::Goodbye, "expected a Goodbye: {frame:?}");
    let payload = serde_json::from_str(std::str::from_utf8(&frame.payload).unwrap()).unwrap();
    payload.get("error").and_then(|v| v.as_str()).unwrap_or_default().to_string()
}

#[test]
fn oversized_declared_length_gets_a_goodbye_and_a_close() {
    with_server(1, |address| {
        let mut stream = TcpStream::connect(address).unwrap();
        // A header declaring a 16 MiB payload (cap: 4 MiB). No payload
        // bytes need follow — the header alone is fatal.
        let mut header = vec![FRAME_MAGIC, 0x01];
        header.extend_from_slice(&(16u32 * 1024 * 1024).to_le_bytes());
        stream.write_all(&header).unwrap();
        let frames = read_frames_to_eof(&mut stream);
        assert_eq!(frames.len(), 1, "expected exactly one Goodbye: {frames:?}");
        let detail = goodbye_detail(&frames[0]);
        assert!(detail.contains("exceeds"), "unhelpful goodbye detail: {detail:?}");
        assert_still_serving(address);
    });
}

#[test]
fn bad_magic_mid_stream_gets_a_goodbye_and_a_close() {
    with_server(1, |address| {
        let mut stream = TcpStream::connect(address).unwrap();
        let mut bytes = request_frame("{\"op\":\"ping\"}");
        bytes.extend_from_slice(b"\x00garbage after a valid frame");
        stream.write_all(&bytes).unwrap();
        let frames = read_frames_to_eof(&mut stream);
        assert_eq!(frames.len(), 2, "expected pong then Goodbye: {frames:?}");
        assert_eq!(frames[0].kind, FrameKind::Response);
        let detail = goodbye_detail(&frames[1]);
        assert!(detail.contains("magic"), "unhelpful goodbye detail: {detail:?}");
        assert_still_serving(address);
    });
}

#[test]
fn client_sent_server_frame_kinds_are_rejected() {
    with_server(1, |address| {
        let mut stream = TcpStream::connect(address).unwrap();
        stream
            .write_all(&Frame::new(FrameKind::Progress, b"{}".to_vec()).encode().unwrap())
            .unwrap();
        let frames = read_frames_to_eof(&mut stream);
        assert_eq!(frames.len(), 1, "expected exactly one Goodbye: {frames:?}");
        let detail = goodbye_detail(&frames[0]);
        assert!(detail.contains("client-sent"), "unhelpful goodbye detail: {detail:?}");
        assert_still_serving(address);
    });
}

#[test]
fn truncated_frame_then_disconnect_is_harmless() {
    with_server(1, |address| {
        {
            let mut stream = TcpStream::connect(address).unwrap();
            let mut bytes = request_frame("{\"op\":\"ping\"}");
            // Half of a second request frame, then a hard disconnect.
            let partial = request_frame(&synthesize_json("never-arrives", 8));
            bytes.extend_from_slice(&partial[..partial.len() / 2]);
            stream.write_all(&bytes).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let frames = read_frames_to_eof(&mut stream);
            assert_eq!(frames.len(), 1, "expected exactly the pong: {frames:?}");
            assert_eq!(frames[0].kind, FrameKind::Response);
        }
        assert_still_serving(address);
    });
}

#[test]
fn mid_stream_disconnect_leaves_other_connections_serving() {
    with_server(1, |address| {
        // Connection A submits a job and vanishes without reading.
        let stream = TcpStream::connect(address).unwrap();
        (&stream).write_all(&request_frame(&synthesize_json("abandoned", 8))).unwrap();
        drop(stream);

        // Connection B's session is unaffected.
        let mut stream = TcpStream::connect(address).unwrap();
        stream.write_all(&request_frame(&synthesize_json("survivor", 8))).unwrap();
        stream
            .write_all(&Frame::new(FrameKind::Goodbye, b"{}".to_vec()).encode().unwrap())
            .unwrap();
        let frames = read_frames_to_eof(&mut stream);
        let response = frames
            .iter()
            .filter(|f| f.kind == FrameKind::Response)
            .map(|f| Response::parse(std::str::from_utf8(&f.payload).unwrap()).unwrap())
            .next()
            .expect("survivor got no response");
        match response {
            Response::Ok(outcome) => assert_eq!(outcome.id, "survivor"),
            other => panic!("survivor's job failed: {other:?}"),
        }
    });
}

#[test]
fn cancellation_interleaves_with_pipelined_jobs() {
    // One worker: job c-1 occupies it while c-2 and c-3 sit in the queue,
    // so the cancels race nothing.
    with_server(1, |address| {
        let mut stream = TcpStream::connect(address).unwrap();
        let mut bytes = Vec::new();
        for id in ["c-1", "c-2", "c-3"] {
            bytes.extend_from_slice(&request_frame(&synthesize_json(id, 16)));
        }
        // Same burst: cancel the still-queued c-3 and an unknown id.
        let cancel = |id: &str| {
            let payload =
                serde_json::to_string(&CancelRequest { id: id.into() }.to_json()).unwrap();
            Frame::new(FrameKind::Cancel, payload.into_bytes()).encode().unwrap()
        };
        bytes.extend_from_slice(&cancel("c-3"));
        bytes.extend_from_slice(&cancel("nobody"));
        stream.write_all(&bytes).unwrap();

        // Collect frames until all three jobs have answered.
        let mut decoder = FrameDecoder::new();
        let mut stages: Vec<(String, String)> = Vec::new();
        let mut responses: Vec<Response> = Vec::new();
        let mut buf = [0u8; 4096];
        while responses.len() < 3 {
            let n = stream.read(&mut buf).expect("read from server");
            assert!(n > 0, "server closed early; so far: {stages:?} {responses:?}");
            decoder.feed(&buf[..n]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                match frame.kind {
                    FrameKind::Progress => {
                        let update = ProgressUpdate::parse(&frame.payload).unwrap();
                        stages.push((update.id, update.stage));
                    }
                    FrameKind::Response => {
                        let text = std::str::from_utf8(&frame.payload).unwrap();
                        responses.push(Response::parse(text).unwrap());
                    }
                    other => panic!("unexpected frame kind {other:?}"),
                }
            }
        }

        let stage_of = |id: &str, stage: &str| stages.iter().any(|(i, s)| i == id && s == stage);
        assert!(stage_of("c-3", "cancelled"), "no cancelled ack for c-3: {stages:?}");
        assert!(stage_of("nobody", "cancel-unknown"), "no cancel-unknown ack: {stages:?}");
        for id in ["c-1", "c-2"] {
            let ok =
                responses.iter().any(|r| matches!(r, Response::Ok(outcome) if outcome.id == id));
            assert!(ok, "{id} did not complete normally: {responses:?}");
        }
        let c3_error = responses.iter().any(|r| {
            matches!(r, Response::Error { id, error } if id == "c-3" && error.contains("cancel"))
        });
        assert!(c3_error, "c-3 was not answered with a cancellation error: {responses:?}");

        // Completed jobs are forgotten: cancelling c-1 now is "unknown".
        stream.write_all(&cancel("c-1")).unwrap();
        let ack = wait_for_ack(&mut stream, &mut decoder, "c-1", &mut Vec::new());
        assert_eq!(ack, "cancel-unknown", "finished job should be forgotten");

        // A job observed *running* (its `started` progress event arrived)
        // is past the point of no return: the ack is cancel-too-late —
        // or cancel-unknown if it finished in the round-trip window —
        // and the job still completes normally.
        stream.write_all(&request_frame(&synthesize_json("c-4", 32))).unwrap();
        let mut started = false;
        while !started {
            let n = stream.read(&mut buf).expect("read from server");
            assert!(n > 0, "server closed before c-4 started");
            decoder.feed(&buf[..n]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                if frame.kind == FrameKind::Progress {
                    let update = ProgressUpdate::parse(&frame.payload).unwrap();
                    if update.id == "c-4" && update.stage == "started" {
                        started = true;
                    }
                }
            }
        }
        stream.write_all(&cancel("c-4")).unwrap();
        let mut late_frames: Vec<Frame> = Vec::new();
        let ack = wait_for_ack(&mut stream, &mut decoder, "c-4", &mut late_frames);
        assert!(ack == "cancel-too-late" || ack == "cancel-unknown", "running job acked {ack:?}");
        let mut c4_ok = late_frames
            .iter()
            .filter(|f| f.kind == FrameKind::Response)
            .map(|f| Response::parse(std::str::from_utf8(&f.payload).unwrap()).unwrap())
            .any(|r| matches!(r, Response::Ok(outcome) if outcome.id == "c-4"));
        while !c4_ok {
            let n = stream.read(&mut buf).expect("read from server");
            assert!(n > 0, "server closed before c-4's response");
            decoder.feed(&buf[..n]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                if frame.kind == FrameKind::Response {
                    let text = std::str::from_utf8(&frame.payload).unwrap();
                    if matches!(Response::parse(text).unwrap(),
                        Response::Ok(outcome) if outcome.id == "c-4")
                    {
                        c4_ok = true;
                    }
                }
            }
        }
        stream
            .write_all(&Frame::new(FrameKind::Goodbye, b"{}".to_vec()).encode().unwrap())
            .unwrap();
        let rest = read_frames_to_eof(&mut stream);
        assert!(rest.is_empty(), "frames after the goodbye: {rest:?}");
    });
}

/// Reads frames until a cancellation ack (any `cancel*`/`cancelled`
/// stage) for `id` arrives; every other frame is pushed to `spill`.
fn wait_for_ack(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    id: &str,
    spill: &mut Vec<Frame>,
) -> String {
    let mut buf = [0u8; 4096];
    loop {
        let n = stream.read(&mut buf).expect("read from server");
        assert!(n > 0, "server closed while waiting for {id}'s cancellation ack");
        decoder.feed(&buf[..n]);
        while let Some(frame) = decoder.next_frame().unwrap() {
            if frame.kind == FrameKind::Progress {
                let update = ProgressUpdate::parse(&frame.payload).unwrap();
                if update.id == id && update.stage.starts_with("cancel") {
                    return update.stage;
                }
            }
            spill.push(frame);
        }
    }
}

//! The portfolio runner: race `N` strategies on worker threads over one
//! shared evaluator, pick the winner deterministically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use asynd_circuit::{
    DecoderFactory, EstimateOptions, Evaluator, EvaluatorStats, NoiseModel, Schedule,
};
use asynd_codes::StabilizerCode;
use asynd_core::{EvaluationMeter, SchedulerError};
use asynd_sim::mix_seed;
use asynd_telemetry::{labeled, Histogram, MetricsRegistry};

use crate::{
    AnnealingSynthesizer, BeamSearchSynthesizer, LowestDepthSynthesizer, MctsSynthesizer,
    ScoreContext, ScoreMetrics, SynthesisBudget, SynthesisOutcome, Synthesizer,
};

/// Domain-separation constant for the shared evaluation-seed salt.
const EVAL_SALT_STREAM: u64 = 0x706f_7274_666f_6c69; // "portfoli"

/// One worker slot of the race: the strategy's result and its wall time.
type StrategySlot = Mutex<Option<(Result<SynthesisOutcome, SchedulerError>, Duration)>>;

/// Configuration of a portfolio race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Master seed: strategy RNG streams and the shared evaluation-seed
    /// salt derive from it.
    pub seed: u64,
    /// Evaluation budget granted to *each* strategy (score requests).
    pub budget_per_strategy: u64,
    /// Monte-Carlo shots per schedule evaluation.
    pub shots_per_evaluation: usize,
    /// Capacity of the shared evaluation cache (`0` disables sharing —
    /// every request recomputes, an ablation baseline).
    pub eval_cache_capacity: usize,
    /// Worker threads racing the strategies. `0` means one thread per
    /// strategy, capped by the machine's parallelism. The synthesized
    /// result is bit-identical for every value.
    pub worker_threads: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            seed: 0,
            budget_per_strategy: 128,
            shots_per_evaluation: 1500,
            eval_cache_capacity: asynd_circuit::DEFAULT_CACHE_CAPACITY,
            worker_threads: 0,
        }
    }
}

impl PortfolioConfig {
    fn validate(&self) -> Result<(), SchedulerError> {
        if self.budget_per_strategy == 0 {
            return Err(SchedulerError::InvalidConfig {
                reason: "budget_per_strategy must be positive".into(),
            });
        }
        if self.shots_per_evaluation == 0 {
            return Err(SchedulerError::InvalidConfig {
                reason: "shots_per_evaluation must be positive".into(),
            });
        }
        Ok(())
    }
}

/// One strategy's result inside a [`PortfolioReport`].
#[derive(Debug, Clone)]
pub struct StrategyReport {
    /// Strategy name.
    pub name: String,
    /// The strategy's best schedule, estimate and counters.
    pub outcome: SynthesisOutcome,
    /// Wall-clock time the strategy ran for (reporting only — never used
    /// in winner selection, which must stay deterministic).
    pub wall: Duration,
    /// The evaluation grant the strategy's meter enforced.
    pub granted: u64,
    /// Evaluations the meter actually counted. Agrees with
    /// `outcome.stats.evaluations` for honest strategies; serving layers
    /// treat the metered figure as authoritative.
    pub metered: u64,
}

/// The result of one portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Per-strategy reports, in strategy registration order.
    pub strategies: Vec<StrategyReport>,
    /// Index of the winning strategy in [`PortfolioReport::strategies`].
    pub winner: usize,
    /// Snapshot of the shared evaluator's cache counters after the race.
    pub evaluator: EvaluatorStats,
    /// Total wall-clock time of the race.
    pub wall: Duration,
}

impl PortfolioReport {
    /// The winning strategy's report.
    pub fn winning(&self) -> &StrategyReport {
        &self.strategies[self.winner]
    }

    /// Total evaluation grant across all strategies.
    pub fn total_granted(&self) -> u64 {
        self.strategies.iter().map(|s| s.granted).sum()
    }

    /// Total metered evaluation spend across all strategies.
    pub fn total_spent(&self) -> u64 {
        self.strategies.iter().map(|s| s.metered).sum()
    }
}

/// A portfolio of synthesis strategies raced over one shared
/// [`Evaluator`].
///
/// Worker threads pull strategies off a queue, so any thread count from 1
/// to `N` produces the same per-strategy results (each strategy is
/// deterministic given its seed, and shared-cache estimates are
/// key-derived — see the crate docs). The winner is the strategy with the
/// best estimate; ties break by strategy index, then by schedule key.
pub struct Portfolio {
    config: PortfolioConfig,
    strategies: Vec<Box<dyn Synthesizer>>,
    registry: Arc<MetricsRegistry>,
}

impl Portfolio {
    /// Creates an empty portfolio recording into the process-wide
    /// metrics registry ([`asynd_telemetry::global`]).
    pub fn new(config: PortfolioConfig) -> Self {
        Portfolio {
            config,
            strategies: Vec::new(),
            registry: Arc::clone(asynd_telemetry::global()),
        }
    }

    /// Redirects this portfolio's telemetry into an explicit registry
    /// (builder style) — servers inject theirs, tests isolate counts.
    /// Recording never perturbs race results, seeds or budgets.
    #[must_use]
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// The standard four-strategy portfolio: MCTS, simulated annealing,
    /// beam search and the lowest-depth baseline.
    pub fn standard(config: PortfolioConfig) -> Self {
        Portfolio::new(config)
            .with_strategy(Box::new(MctsSynthesizer::default()))
            .with_strategy(Box::new(AnnealingSynthesizer::default()))
            .with_strategy(Box::new(BeamSearchSynthesizer::default()))
            .with_strategy(Box::new(LowestDepthSynthesizer::new()))
    }

    /// Adds a strategy (builder style). Registration order is the
    /// tie-break order of winner selection.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Box<dyn Synthesizer>) -> Self {
        self.strategies.push(strategy);
        self
    }

    /// Adds a strategy in place.
    pub fn push(&mut self, strategy: Box<dyn Synthesizer>) {
        self.strategies.push(strategy);
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.strategies.len()
    }

    /// Whether no strategy is registered.
    pub fn is_empty(&self) -> bool {
        self.strategies.is_empty()
    }

    /// The configuration of this portfolio.
    pub fn config(&self) -> &PortfolioConfig {
        &self.config
    }

    /// Races every registered strategy on `code` and returns the full
    /// report.
    ///
    /// Each evaluation is capped to one estimator thread
    /// (parallelism comes from racing strategies, not from splitting an
    /// evaluation), and each strategy runs under seed
    /// `mix_seed(config.seed, 1 + index)` against a scoring context
    /// salted with `mix_seed(config.seed, EVAL_SALT_STREAM)`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::InvalidConfig`] for an empty portfolio
    /// or invalid configuration; strategy errors propagate (the
    /// lowest-index error wins, deterministically).
    pub fn run(
        &self,
        code: &StabilizerCode,
        noise: &NoiseModel,
        factory: Arc<dyn DecoderFactory + Send + Sync>,
    ) -> Result<PortfolioReport, SchedulerError> {
        self.run_seeded(code, noise, factory, &[])
    }

    /// [`Portfolio::run`] with warm-start seed schedules: previously
    /// synthesized schedules of this code (e.g. registry-stored winners)
    /// that seed-aware strategies start from instead of their cold
    /// state. See [`Portfolio::run_with_seeds`] for the contract.
    ///
    /// # Errors
    ///
    /// As [`Portfolio::run`].
    pub fn run_seeded(
        &self,
        code: &StabilizerCode,
        noise: &NoiseModel,
        factory: Arc<dyn DecoderFactory + Send + Sync>,
        seeds: &[Schedule],
    ) -> Result<PortfolioReport, SchedulerError> {
        let options = EstimateOptions { max_threads: Some(1), ..EstimateOptions::default() };
        let evaluator = Arc::new(Evaluator::with_capacity(
            noise.clone(),
            factory,
            self.config.shots_per_evaluation,
            options,
            self.config.eval_cache_capacity,
        ));
        self.run_with_seeds(code, evaluator, mix_seed(self.config.seed, EVAL_SALT_STREAM), seeds)
    }

    /// Races every registered strategy over a *caller-owned* evaluator —
    /// the entry point serving layers use to shard one evaluator per
    /// (code, error-model) tenant and share its cache across jobs.
    ///
    /// The evaluator's own noise model, shot budget, estimation options
    /// and cache capacity govern; the config's `shots_per_evaluation` and
    /// `eval_cache_capacity` are ignored on this path. `salt` is the
    /// evaluation-seed salt: every job sharing the evaluator must pass the
    /// *same* salt, so cached estimates stay a pure function of the
    /// schedule regardless of which job (or worker) computed them first.
    ///
    /// Each strategy runs against a private [`EvaluationMeter`] capped at
    /// its grant, so a misbehaving strategy is cut off at the budget
    /// rather than trusted to self-limit.
    ///
    /// # Errors
    ///
    /// As [`Portfolio::run`].
    pub fn run_with_evaluator(
        &self,
        code: &StabilizerCode,
        evaluator: Arc<Evaluator>,
        salt: u64,
    ) -> Result<PortfolioReport, SchedulerError> {
        self.run_with_seeds(code, evaluator, salt, &[])
    }

    /// [`Portfolio::run_with_evaluator`] with warm-start seed schedules.
    ///
    /// Every strategy receives the same seed slice through
    /// [`Synthesizer::synthesize_seeded`]; seed-aware strategies
    /// (annealing starts from the seed's ordering, beam search keeps it
    /// in its frontier) use it, the rest ignore it. Warm starts never
    /// bypass evaluation — a seeded schedule is scored through the
    /// strategy's metered [`ScoreContext`] like any candidate, so the
    /// per-strategy grant is enforced unchanged — and they never touch
    /// winner selection, which stays bit-identical for any worker-thread
    /// count with seeds present or absent (the seeds are part of the
    /// race's input, not of its scheduling).
    ///
    /// Callers should pass schedules that validate against `code`
    /// (strategies fall back to cold starts on seeds that do not map
    /// onto the code's move space, so a stale seed degrades to a normal
    /// race).
    ///
    /// # Errors
    ///
    /// As [`Portfolio::run`].
    pub fn run_with_seeds(
        &self,
        code: &StabilizerCode,
        evaluator: Arc<Evaluator>,
        salt: u64,
        seeds: &[Schedule],
    ) -> Result<PortfolioReport, SchedulerError> {
        self.config.validate()?;
        if self.strategies.is_empty() {
            return Err(SchedulerError::InvalidConfig {
                reason: "portfolio has no strategies".into(),
            });
        }
        let start = Instant::now();
        let ctx = ScoreContext::new(evaluator.clone(), salt);
        let budget = SynthesisBudget::evaluations(self.config.budget_per_strategy);
        let meters: Vec<Arc<EvaluationMeter>> = self
            .strategies
            .iter()
            .map(|_| Arc::new(EvaluationMeter::new(budget.evaluations)))
            .collect();
        // Per-strategy telemetry: resolved up front (handle resolution
        // locks the registry; the race itself records lock-free).
        let strategy_metrics: Vec<(ScoreMetrics, Histogram)> = self
            .strategies
            .iter()
            .map(|s| {
                let labels = [("strategy", s.name())];
                (
                    ScoreMetrics::register(&self.registry, &labels),
                    self.registry.histogram(&labeled("asynd_strategy_wall_us", &labels)),
                )
            })
            .collect();

        let workers = match self.config.worker_threads {
            0 => self.strategies.len().min(rayon::current_num_threads()).max(1),
            n => n.min(self.strategies.len()).max(1),
        };
        let slots: Vec<StrategySlot> = self.strategies.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        rayon::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= self.strategies.len() {
                        break;
                    }
                    let strategy = &self.strategies[index];
                    let strategy_ctx = ctx
                        .with_meter(meters[index].clone())
                        .with_metrics(strategy_metrics[index].0.clone());
                    let seed = mix_seed(self.config.seed, 1 + index as u64);
                    let began = Instant::now();
                    let result =
                        strategy.synthesize_seeded(code, &strategy_ctx, budget, seed, seeds);
                    let wall = began.elapsed();
                    strategy_metrics[index].1.record_duration(wall);
                    *slots[index].lock().expect("portfolio slot poisoned") = Some((result, wall));
                });
            }
        });

        let mut reports = Vec::with_capacity(self.strategies.len());
        for (index, slot) in slots.into_iter().enumerate() {
            let (result, wall) = slot
                .into_inner()
                .expect("portfolio slot poisoned")
                .expect("every strategy slot is filled");
            let outcome = result?;
            reports.push(StrategyReport {
                name: self.strategies[index].name().to_string(),
                outcome,
                wall,
                granted: budget.evaluations,
                metered: meters[index].spent(),
            });
        }

        // Winner: best estimate; estimate ties keep the lower
        // registration index (strict improvement over the iteration
        // order). The schedule-key tie-break of the documented contract
        // is vacuous here — indices are unique — but strategies use it
        // internally (candidate_order) for their own incumbents.
        let mut winner = 0usize;
        for index in 1..reports.len() {
            let challenger = reports[index].outcome.estimate.p_overall();
            let incumbent = reports[winner].outcome.estimate.p_overall();
            if challenger.partial_cmp(&incumbent) == Some(std::cmp::Ordering::Less) {
                winner = index;
            }
        }

        let wall = start.elapsed();
        self.registry.counter("asynd_races_total").inc();
        self.registry.histogram("asynd_race_wall_us").record_duration(wall);
        self.registry
            .counter(&labeled(
                "asynd_strategy_wins_total",
                &[("strategy", self.strategies[winner].name())],
            ))
            .inc();
        for report in &reports {
            self.registry
                .counter(&labeled(
                    "asynd_strategy_budget_spent_total",
                    &[("strategy", report.name.as_str())],
                ))
                .add(report.metered);
        }

        Ok(PortfolioReport { strategies: reports, winner, evaluator: evaluator.stats(), wall })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynd_codes::steane_code;
    use asynd_decode::UnionFindFactory;

    fn quick_config() -> PortfolioConfig {
        PortfolioConfig {
            seed: 3,
            budget_per_strategy: 64,
            shots_per_evaluation: 200,
            ..PortfolioConfig::default()
        }
    }

    #[test]
    fn standard_portfolio_runs_and_reports() {
        let code = steane_code();
        let portfolio = Portfolio::standard(quick_config());
        assert_eq!(portfolio.len(), 4);
        let report = portfolio
            .run(&code, &NoiseModel::brisbane(), Arc::new(UnionFindFactory::new()))
            .unwrap();
        assert_eq!(report.strategies.len(), 4);
        report.winning().outcome.schedule.validate(&code).unwrap();
        // The meters agree with every strategy's self-reported spend and
        // stay within the grant.
        for s in &report.strategies {
            assert_eq!(s.metered, s.outcome.stats.evaluations, "{} meter disagrees", s.name);
            assert!(s.metered <= s.granted);
        }
        assert_eq!(report.total_granted(), 4 * 64);
        assert!(report.total_spent() > 0);
        // The winner is never worse than the lowest-depth baseline member.
        let baseline =
            report.strategies.iter().find(|s| s.name == "lowest-depth").expect("baseline member");
        assert!(
            report.winning().outcome.estimate.p_overall() <= baseline.outcome.estimate.p_overall()
        );
        // The shared cache saw traffic from several strategies.
        assert!(report.evaluator.hits + report.evaluator.misses > 4);
    }

    #[test]
    fn telemetry_spend_equals_metered_spend() {
        let code = steane_code();
        let registry = Arc::new(MetricsRegistry::new());
        let portfolio = Portfolio::standard(quick_config()).with_metrics(registry.clone());
        let report = portfolio
            .run(&code, &NoiseModel::brisbane(), Arc::new(UnionFindFactory::new()))
            .unwrap();
        let snapshot = registry.snapshot();
        for s in &report.strategies {
            let labels = [("strategy", s.name.as_str())];
            // The histogram-backed evaluation counter, the spend counter
            // and the meter all agree — bulk charges (MCTS) included.
            let evals = labeled("asynd_strategy_evals_total", &labels);
            assert_eq!(snapshot.counters[&evals], s.metered, "{} drifted", s.name);
            let spent = labeled("asynd_strategy_budget_spent_total", &labels);
            assert_eq!(snapshot.counters[&spent], s.metered);
            let wall = labeled("asynd_strategy_wall_us", &labels);
            assert_eq!(snapshot.histograms[&wall].count, 1);
        }
        assert_eq!(snapshot.counters["asynd_races_total"], 1);
        assert_eq!(snapshot.histograms["asynd_race_wall_us"].count, 1);
        let winner_wins =
            labeled("asynd_strategy_wins_total", &[("strategy", report.winning().name.as_str())]);
        assert_eq!(snapshot.counters[&winner_wins], 1);
    }

    #[test]
    fn empty_portfolio_is_rejected() {
        let code = steane_code();
        let portfolio = Portfolio::new(quick_config());
        assert!(matches!(
            portfolio.run(&code, &NoiseModel::brisbane(), Arc::new(UnionFindFactory::new())),
            Err(SchedulerError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn zero_budget_is_rejected() {
        let code = steane_code();
        let portfolio =
            Portfolio::standard(PortfolioConfig { budget_per_strategy: 0, ..quick_config() });
        assert!(matches!(
            portfolio.run(&code, &NoiseModel::brisbane(), Arc::new(UnionFindFactory::new())),
            Err(SchedulerError::InvalidConfig { .. })
        ));
    }
}

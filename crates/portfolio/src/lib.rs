//! Portfolio schedule synthesis: interchangeable search strategies raced
//! deterministically over one shared evaluation service.
//!
//! The AlphaSyndrome reproduction originally had exactly one synthesizer —
//! the MCTS scheduler. No single search strategy dominates across code
//! families and budgets (annealing refines good incumbents cheaply, beam
//! search exploits strong greedy signals, MCTS explores broadly), so this
//! crate turns synthesis into a *subsystem*:
//!
//! * [`Synthesizer`] — the common interface: seeded, budgeted, scoring
//!   candidates through a [`ScoreContext`], returning the best schedule
//!   plus [`SynthesisStats`].
//! * [`MctsSynthesizer`] / [`LowestDepthSynthesizer`] — adapters putting
//!   the existing searchers behind the trait.
//! * [`AnnealingSynthesizer`] — simulated annealing over valid schedules:
//!   tick-shift / swap / segment-reassign neighbourhood in the
//!   per-partition ordering space, geometric cooling, Metropolis
//!   acceptance on evaluator estimates.
//! * [`BeamSearchSynthesizer`] — greedy beam search: a width-`K` frontier
//!   of partial orderings, each candidate scored by completing it
//!   deterministically and estimating the full circuit, pruned by
//!   `(estimated logical error, depth)`.
//! * [`Portfolio`] — races `N` strategies on worker threads sharing one
//!   [`Evaluator`], with deterministic winner selection.
//!
//! # The shared-cache determinism discipline
//!
//! Racing searchers on one memoising cache is only reproducible if a
//! cache entry's value does not depend on *who* computed it. The
//! [`ScoreContext`] therefore derives every evaluation seed from the
//! schedule's canonical key ([`asynd_core::eval_seed_for`]): the estimate
//! of a schedule is a pure function of the schedule, so whichever worker
//! pays for an entry first, every other worker observes bit-identical
//! numbers. Combined with per-strategy RNG streams seeded from
//! `(portfolio seed, strategy index)` and winner selection ordered by
//! `(best estimate, strategy index, schedule key)`, the portfolio's
//! output is **bit-identical for any worker-thread count** — the same
//! discipline the leaf-parallel MCTS waves established.
//!
//! # Example
//!
//! ```no_run
//! use asynd_circuit::NoiseModel;
//! use asynd_codes::steane_code;
//! use asynd_portfolio::{Portfolio, PortfolioConfig};
//! use std::sync::Arc;
//!
//! let portfolio = Portfolio::standard(PortfolioConfig {
//!     budget_per_strategy: 64,
//!     shots_per_evaluation: 500,
//!     ..PortfolioConfig::default()
//! });
//! let report = portfolio
//!     .run(
//!         &steane_code(),
//!         &NoiseModel::brisbane(),
//!         Arc::new(asynd_decode::UnionFindFactory::new()),
//!     )
//!     .unwrap();
//! println!("winner: {}", report.winning().name);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod beam;
mod mcts_adapter;
mod racer;

pub use anneal::{AnnealConfig, AnnealingSynthesizer};
pub use asynd_core::MoveSpace;
pub use beam::{BeamConfig, BeamSearchSynthesizer};
pub use mcts_adapter::{LowestDepthSynthesizer, MctsSynthesizer};
pub use racer::{Portfolio, PortfolioConfig, PortfolioReport, StrategyReport};

use std::cmp::Ordering;
use std::sync::Arc;

use asynd_circuit::{Evaluator, LogicalErrorEstimate, Schedule};
use asynd_codes::StabilizerCode;
use asynd_core::{eval_seed_for, EvaluationMeter, SchedulerError};
use asynd_telemetry::{labeled, Counter, Histogram, MetricsRegistry};

/// How much work a synthesizer may spend: the number of score requests it
/// may issue through its [`ScoreContext`].
///
/// Cache hits count against the budget like fresh evaluations (the budget
/// bounds *requests*, not samples), which keeps strategy comparisons
/// budget-fair whether or not another racer already paid for an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthesisBudget {
    /// Maximum number of schedule evaluations.
    pub evaluations: u64,
}

impl SynthesisBudget {
    /// A budget of `evaluations` schedule evaluations.
    pub fn evaluations(evaluations: u64) -> Self {
        SynthesisBudget { evaluations }
    }
}

/// Aggregate counters of one synthesis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthesisStats {
    /// Score requests issued (never more than the budget).
    pub evaluations: u64,
    /// Candidate schedules proposed (strategy-specific granularity:
    /// annealing proposals, beam expansions, MCTS iterations).
    pub candidates: u64,
    /// Times the strategy's incumbent best improved.
    pub improvements: u64,
}

/// The result of one synthesis run: the best schedule found, its
/// estimate, and run statistics.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The best schedule the strategy found.
    pub schedule: Schedule,
    /// The shared-context estimate of that schedule.
    pub estimate: LogicalErrorEstimate,
    /// Run counters.
    pub stats: SynthesisStats,
}

/// Pre-resolved telemetry handles of one strategy's scoring traffic.
///
/// The evaluation counter is incremented by every *successful*
/// [`ScoreContext::charge`] — the same events the strategy's
/// [`EvaluationMeter`] counts — so the telemetry-recorded spend equals
/// the metered spend by construction, bulk charges (the MCTS adapter)
/// included. The latency histogram covers facade evaluations
/// ([`ScoreContext::score`]) only.
#[derive(Clone)]
pub struct ScoreMetrics {
    evals: Counter,
    eval_us: Histogram,
}

impl ScoreMetrics {
    /// Resolves the strategy scoring metric family in `registry` under
    /// the given labels (the racer uses `[("strategy", name)]`).
    pub fn register(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> ScoreMetrics {
        ScoreMetrics {
            evals: registry.counter(&labeled("asynd_strategy_evals_total", labels)),
            eval_us: registry.histogram(&labeled("asynd_strategy_eval_us", labels)),
        }
    }

    /// Current value of the evaluation counter (shared with every clone).
    pub fn evaluations(&self) -> u64 {
        self.evals.value()
    }
}

/// The scoring facade every synthesizer evaluates candidates through.
///
/// Wraps a shared [`Evaluator`] and a salt; [`ScoreContext::score`]
/// derives the evaluation seed from the schedule's canonical key, which
/// is the property that makes concurrent sharing of the memoisation cache
/// deterministic (see the crate docs).
#[derive(Clone)]
pub struct ScoreContext {
    evaluator: Arc<Evaluator>,
    salt: u64,
    meter: Option<Arc<EvaluationMeter>>,
    metrics: Option<ScoreMetrics>,
}

impl ScoreContext {
    /// Creates a context over a (possibly shared) evaluator.
    pub fn new(evaluator: Arc<Evaluator>, salt: u64) -> Self {
        ScoreContext { evaluator, salt, meter: None, metrics: None }
    }

    /// Attaches an enforcement meter (builder style): every score request
    /// (and every explicit [`ScoreContext::charge`]) counts against it, and
    /// requests beyond its cap fail with
    /// [`SchedulerError::BudgetExhausted`].
    ///
    /// A meter must be private to one strategy — sharing one between
    /// racing strategies would make exhaustion order depend on thread
    /// scheduling (see [`asynd_core::EvaluationMeter`]).
    #[must_use]
    pub fn with_meter(&self, meter: Arc<EvaluationMeter>) -> Self {
        ScoreContext {
            evaluator: self.evaluator.clone(),
            salt: self.salt,
            meter: Some(meter),
            metrics: self.metrics.clone(),
        }
    }

    /// Attaches telemetry handles (builder style): successful charges
    /// count into the evaluation counter, facade evaluations record their
    /// latency. Recording never perturbs scores, seeds or budgets.
    #[must_use]
    pub fn with_metrics(&self, metrics: ScoreMetrics) -> Self {
        ScoreContext {
            evaluator: self.evaluator.clone(),
            salt: self.salt,
            meter: self.meter.clone(),
            metrics: Some(metrics),
        }
    }

    /// The attached enforcement meter, if any.
    pub fn meter(&self) -> Option<&Arc<EvaluationMeter>> {
        self.meter.as_ref()
    }

    /// Charges `amount` evaluations against the meter (no-op without one).
    ///
    /// Strategies that evaluate around the scoring facade (the MCTS
    /// adapter drives the evaluator directly) use this to keep the meter
    /// honest about their true spend.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::BudgetExhausted`] if the charge exceeds
    /// the meter's cap.
    pub fn charge(&self, amount: u64) -> Result<(), SchedulerError> {
        if let Some(meter) = &self.meter {
            meter.charge(amount)?;
        }
        // Count only charges the meter accepted, so the telemetry spend
        // equals the metered spend by construction.
        if let Some(metrics) = &self.metrics {
            metrics.evals.add(amount);
        }
        Ok(())
    }

    /// The underlying evaluator (strategies needing richer access — the
    /// MCTS adapter routes its whole search through it).
    pub fn evaluator(&self) -> &Arc<Evaluator> {
        &self.evaluator
    }

    /// The seed-derivation salt (shared by every strategy of a race).
    pub fn salt(&self) -> u64 {
        self.salt
    }

    /// Scores a schedule: evaluates it under its key-derived seed through
    /// the shared cache, charging one evaluation against the meter (if one
    /// is attached).
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::Evaluation`] when the underlying
    /// evaluation fails (invalid schedule or options) and
    /// [`SchedulerError::BudgetExhausted`] when the meter's cap is spent.
    pub fn score(
        &self,
        code: &StabilizerCode,
        schedule: &Schedule,
    ) -> Result<LogicalErrorEstimate, SchedulerError> {
        self.charge(1)?;
        let seed = eval_seed_for(self.salt, schedule.key());
        let start = std::time::Instant::now();
        let estimate =
            self.evaluator.evaluate(code, schedule, seed).map_err(SchedulerError::Evaluation)?;
        if let Some(metrics) = &self.metrics {
            metrics.eval_us.record_duration(start.elapsed());
        }
        Ok(estimate)
    }
}

/// A schedule-synthesis strategy: seeded, budgeted, racing-safe.
///
/// Implementations must be deterministic given `(code, budget, seed)` and
/// the scoring context's salt — in particular they must draw all
/// randomness from RNGs seeded on `seed` and must score exclusively
/// through `ctx`, never from wall-clock, thread identity or ambient
/// state. That contract is what lets the [`Portfolio`] racer guarantee
/// bit-identical output for any worker-thread count.
pub trait Synthesizer: Send + Sync {
    /// Strategy name used in reports and benches.
    fn name(&self) -> &str;

    /// Synthesizes a schedule for `code` within `budget` evaluations.
    ///
    /// # Errors
    ///
    /// Returns a [`SchedulerError`] on invalid configuration or failed
    /// evaluation.
    fn synthesize(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        seed: u64,
    ) -> Result<SynthesisOutcome, SchedulerError>;

    /// [`Synthesizer::synthesize`] with warm-start seeds: previously
    /// synthesized schedules of the *same code* (e.g. registry-stored
    /// winners) the strategy may use as starting points.
    ///
    /// Warm starts only seed the search — they never bypass evaluation:
    /// a seeded schedule is scored through `ctx` like any candidate, so
    /// it spends budget and the schedule-quality guarantees of the
    /// scoring path are preserved. Strategies with no use for seeds (the
    /// default implementation) ignore them; either way the result stays
    /// a deterministic function of `(code, budget, seed, warm, salt)`.
    ///
    /// Callers must pass schedules valid for `code`; strategies fall
    /// back to their cold start when a seed does not map onto the code's
    /// move space.
    ///
    /// # Errors
    ///
    /// As [`Synthesizer::synthesize`].
    fn synthesize_seeded(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        seed: u64,
        warm: &[Schedule],
    ) -> Result<SynthesisOutcome, SchedulerError> {
        let _ = warm;
        self.synthesize(code, ctx, budget, seed)
    }
}

/// Total order on candidates used by every strategy and by the racer's
/// winner selection: lower estimated logical error first, then lower
/// depth, then the canonical schedule key (so exact estimate ties still
/// resolve identically on every run).
pub(crate) fn candidate_order(
    a: (&LogicalErrorEstimate, &Schedule),
    b: (&LogicalErrorEstimate, &Schedule),
) -> Ordering {
    let (ea, sa) = a;
    let (eb, sb) = b;
    ea.p_overall()
        .partial_cmp(&eb.p_overall())
        .unwrap_or(Ordering::Equal)
        .then_with(|| sa.depth().cmp(&sb.depth()))
        .then_with(|| sa.key().cmp(&sb.key()))
}

/// Rejects an empty evaluation budget with a uniform error message.
pub(crate) fn require_budget(budget: SynthesisBudget) -> Result<(), SchedulerError> {
    if budget.evaluations == 0 {
        return Err(SchedulerError::InvalidConfig {
            reason: "synthesis budget must allow at least one evaluation".into(),
        });
    }
    Ok(())
}

//! Adapters putting the pre-existing searchers behind the
//! [`Synthesizer`] trait.

use asynd_codes::StabilizerCode;
use asynd_core::{
    synthesize_with_evaluator, LowestDepthScheduler, MctsConfig, Scheduler, SchedulerError,
};
use asynd_sim::mix_seed;

use crate::{
    candidate_order, require_budget, ScoreContext, SynthesisBudget, SynthesisOutcome,
    SynthesisStats, Synthesizer,
};

/// The AlphaSyndrome MCTS scheduler as a portfolio strategy.
///
/// The adapter routes the whole search through the shared evaluator
/// (`asynd_core::synthesize_with_evaluator`) with
/// [`MctsConfig::eval_seed_salt`] set to the context's salt, so its
/// evaluations use the same key-derived seeds as every other racer — the
/// precondition for deterministic cache sharing.
///
/// # Budget translation
///
/// The search spends one authoritative evaluation per iteration plus the
/// reward reference, and commits one check per scheduling step, so a run
/// at `iterations_per_step = ips` costs at most
/// `ips · total_checks + 2` evaluations (each step tops up at most `ips`
/// iterations). Continuous subtree reuse usually makes later steps much
/// cheaper than `ips`, so a single run would underspend a large grant;
/// the adapter therefore runs deterministic *restarts* — each round
/// re-derives `ips` from the remaining budget and a fresh round seed,
/// and the best schedule across rounds (by estimate, then depth, then
/// key) is returned. Total spend never exceeds the budget.
#[derive(Debug, Clone, Default)]
pub struct MctsSynthesizer {
    /// The configuration template; `seed`, `eval_seed_salt`,
    /// `shots_per_evaluation` and `iterations_per_step` are overridden per
    /// round (the shared evaluator owns shots and estimation options).
    pub template: MctsConfig,
}

impl MctsSynthesizer {
    /// Creates the adapter from a configuration template.
    pub fn new(template: MctsConfig) -> Self {
        MctsSynthesizer { template }
    }
}

impl Synthesizer for MctsSynthesizer {
    fn name(&self) -> &str {
        "mcts"
    }

    fn synthesize(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        seed: u64,
    ) -> Result<SynthesisOutcome, SchedulerError> {
        require_budget(budget)?;
        let total_checks =
            code.stabilizers().iter().map(|s| s.weight()).sum::<usize>().max(1) as u64;
        // One iteration per scheduling step, plus the reference and the
        // final re-score, is the cheapest possible run.
        let floor = total_checks + 2;
        if budget.evaluations < floor {
            return Err(SchedulerError::InvalidConfig {
                reason: format!(
                    "the MCTS strategy needs at least one evaluation per scheduling step \
                     ({floor} total for this code), got a budget of {}",
                    budget.evaluations
                ),
            });
        }

        let mut remaining = budget.evaluations;
        let mut stats = SynthesisStats::default();
        let mut best: Option<SynthesisOutcome> = None;
        let mut round: u64 = 0;
        while remaining >= floor {
            let mut config = self.template.clone();
            config.seed = mix_seed(seed, round);
            config.eval_seed_salt = Some(ctx.salt());
            config.shots_per_evaluation = ctx.evaluator().shots();
            // Per step the search tops up at most `ips` iterations, so a
            // round costs ≤ ips · total_checks + 2 ≤ remaining.
            config.iterations_per_step = ((remaining - 2) / total_checks).max(1) as usize;
            let (schedule, run) =
                synthesize_with_evaluator(&config, code, ctx.evaluator(), |_| {})?;
            // The search above evaluated around the scoring facade (one
            // request per iteration plus the reward reference); settle
            // those with the meter so metered and reported spend agree.
            // `ctx.score` below charges the final re-score itself.
            ctx.charge(run.iterations + 1)?;
            let estimate = ctx.score(code, &schedule)?;
            let spent = run.iterations + 2;
            remaining = remaining.saturating_sub(spent);
            stats.evaluations += spent;
            stats.candidates += run.iterations;
            let adopt = best.as_ref().is_none_or(|incumbent| {
                candidate_order((&estimate, &schedule), (&incumbent.estimate, &incumbent.schedule))
                    == std::cmp::Ordering::Less
            });
            if adopt {
                stats.improvements += 1;
                best = Some(SynthesisOutcome { schedule, estimate, stats });
            }
            round += 1;
        }
        let mut outcome = best.expect("the budget floor guarantees at least one round");
        outcome.stats = stats;
        Ok(outcome)
    }
}

/// The lowest-depth baseline as a (single-candidate) portfolio strategy.
///
/// Racing it costs one evaluation and guarantees the portfolio never
/// returns anything worse than the depth-optimal baseline — the winner
/// selection takes the minimum over all strategies.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowestDepthSynthesizer {
    _private: (),
}

impl LowestDepthSynthesizer {
    /// Creates the strategy.
    pub fn new() -> Self {
        LowestDepthSynthesizer { _private: () }
    }
}

impl Synthesizer for LowestDepthSynthesizer {
    fn name(&self) -> &str {
        "lowest-depth"
    }

    fn synthesize(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        _seed: u64,
    ) -> Result<SynthesisOutcome, SchedulerError> {
        require_budget(budget)?;
        let schedule = LowestDepthScheduler::new().schedule(code)?;
        let estimate = ctx.score(code, &schedule)?;
        Ok(SynthesisOutcome {
            schedule,
            estimate,
            stats: SynthesisStats { evaluations: 1, candidates: 1, improvements: 1 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynd_circuit::{EstimateOptions, Evaluator, NoiseModel};
    use asynd_codes::steane_code;
    use asynd_decode::UnionFindFactory;
    use std::sync::Arc;

    fn context(shots: usize) -> ScoreContext {
        let evaluator = Evaluator::new(
            NoiseModel::brisbane(),
            Arc::new(UnionFindFactory::new()),
            shots,
            EstimateOptions::default(),
        );
        ScoreContext::new(Arc::new(evaluator), 0x4D435453)
    }

    #[test]
    fn mcts_adapter_is_deterministic_and_budgeted() {
        let code = steane_code();
        let synthesizer = MctsSynthesizer::default();
        let budget = SynthesisBudget::evaluations(4 * 24 + 2);
        let a = synthesizer.synthesize(&code, &context(200), budget, 11).unwrap();
        let b = synthesizer.synthesize(&code, &context(200), budget, 11).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.stats, b.stats);
        a.schedule.validate(&code).unwrap();
        assert!(a.stats.candidates >= 24, "at least one iteration per step");
        assert!(a.stats.improvements >= 1, "the first round adopts an incumbent");
        assert!(
            a.stats.evaluations <= budget.evaluations,
            "budget contract violated: {} > {}",
            a.stats.evaluations,
            budget.evaluations
        );
        // Restarts spend the grant rather than stopping after one
        // underspent run: a single round at this budget costs well under
        // half of it (subtree reuse), so at least a second round ran.
        assert!(
            a.stats.evaluations > budget.evaluations / 2,
            "restart rounds failed to spend the budget: {} of {}",
            a.stats.evaluations,
            budget.evaluations
        );
    }

    #[test]
    fn mcts_adapter_rejects_budgets_below_its_per_step_floor() {
        let code = steane_code(); // 24 checks -> floor of 26 evaluations
        let synthesizer = MctsSynthesizer::default();
        let ctx = context(200);
        assert!(matches!(
            synthesizer.synthesize(&code, &ctx, SynthesisBudget::evaluations(25), 0),
            Err(SchedulerError::InvalidConfig { .. })
        ));
        let ok = synthesizer.synthesize(&code, &ctx, SynthesisBudget::evaluations(26), 0).unwrap();
        assert!(ok.stats.evaluations <= 26);
    }

    #[test]
    fn lowest_depth_adapter_scores_the_baseline() {
        let code = steane_code();
        let ctx = context(200);
        let outcome = LowestDepthSynthesizer::new()
            .synthesize(&code, &ctx, SynthesisBudget::evaluations(1), 0)
            .unwrap();
        outcome.schedule.validate(&code).unwrap();
        assert_eq!(outcome.stats.evaluations, 1);
        let baseline = LowestDepthScheduler::new().schedule(&code).unwrap();
        assert_eq!(outcome.schedule, baseline);
    }
}

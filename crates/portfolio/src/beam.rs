//! Greedy beam-search schedule synthesis.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use asynd_circuit::{LogicalErrorEstimate, Schedule};
use asynd_codes::StabilizerCode;
use asynd_core::SchedulerError;
use asynd_sim::mix_seed;

use crate::{
    candidate_order, require_budget, ScoreContext, SynthesisBudget, SynthesisOutcome,
    SynthesisStats, Synthesizer,
};
use asynd_core::MoveSpace;

/// Tuning of the beam-search synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamConfig {
    /// Frontier width `K`: how many partial orderings survive each level.
    pub width: usize,
    /// Maximum expansions per frontier state per level (the next moves
    /// are drawn from the state's untried set in a seeded random order,
    /// so wide partitions are subsampled rather than truncated towards
    /// low move indices).
    pub branching: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig { width: 4, branching: 6 }
    }
}

impl BeamConfig {
    fn validate(&self) -> Result<(), SchedulerError> {
        if self.width == 0 || self.branching == 0 {
            return Err(SchedulerError::InvalidConfig {
                reason: format!(
                    "beam width and branching must be positive, got width {} branching {}",
                    self.width, self.branching
                ),
            });
        }
        Ok(())
    }
}

/// One scored beam candidate.
struct Candidate {
    prefix: Vec<usize>,
    completion: Vec<usize>,
    schedule: Schedule,
    estimate: LogicalErrorEstimate,
}

/// Greedy beam search over partial schedules.
///
/// Partitions are finalised one after another (the same decomposition the
/// MCTS scheduler uses). Within a partition the search keeps a frontier
/// of at most [`BeamConfig::width`] partial orderings; each is expanded
/// by up to [`BeamConfig::branching`] next checks, every expansion is
/// *completed* deterministically (remaining checks in move-list order)
/// and the completed circuit is scored through the shared
/// [`ScoreContext`]. The frontier is pruned by `(estimated logical error,
/// circuit depth, schedule key)` — the logical-error bound does the heavy
/// pruning, depth breaks estimate ties towards faster rounds.
///
/// When the evaluation budget runs dry mid-search the best completed
/// candidate seen so far is returned (every scored candidate is a
/// complete, valid schedule, so the strategy degrades gracefully).
#[derive(Debug, Clone, Default)]
pub struct BeamSearchSynthesizer {
    /// Beam parameters.
    pub config: BeamConfig,
}

impl BeamSearchSynthesizer {
    /// Creates the synthesizer with explicit parameters.
    pub fn new(config: BeamConfig) -> Self {
        BeamSearchSynthesizer { config }
    }
}

impl Synthesizer for BeamSearchSynthesizer {
    fn name(&self) -> &str {
        "beam"
    }

    fn synthesize(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        seed: u64,
    ) -> Result<SynthesisOutcome, SchedulerError> {
        self.synthesize_seeded(code, ctx, budget, seed, &[])
    }

    fn synthesize_seeded(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        seed: u64,
        warm: &[Schedule],
    ) -> Result<SynthesisOutcome, SchedulerError> {
        self.config.validate()?;
        require_budget(budget)?;
        let space = MoveSpace::new(code)?;
        let mut stats = SynthesisStats::default();
        let mut remaining = budget.evaluations;

        // Warm start: the first seed that maps onto this move space is
        // injected into the search — scored once as the initial
        // incumbent (so the result is never worse than the seed) and
        // kept in every frontier as an extra member (so the beam can
        // refine rather than rediscover it). Both uses go through the
        // scoring context and spend budget like any candidate.
        let seeded: Option<Vec<Vec<usize>>> =
            warm.iter().find_map(|schedule| space.orderings_for(schedule));
        let mut best: Option<(LogicalErrorEstimate, Schedule)> = None;
        if let Some(orderings) = &seeded {
            let schedule = space.schedule_for(code, orderings);
            let estimate = ctx.score(code, &schedule)?;
            remaining -= 1;
            stats.evaluations += 1;
            stats.candidates += 1;
            stats.improvements += 1;
            best = Some((estimate, schedule));
        }

        // Finalised orderings of already-searched partitions; later
        // partitions stay empty (placeholder) until reached.
        let mut finalized: Vec<Vec<usize>> = vec![Vec::new(); space.num_partitions()];

        'partitions: for partition in 0..space.num_partitions() {
            let n = space.moves_in(partition);
            if n == 0 {
                continue;
            }
            let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(seed, partition as u64));
            let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
            let mut partition_best: Option<Candidate> = None;

            for _level in 0..n {
                let mut scored: Vec<Candidate> = Vec::new();
                for state in &frontier {
                    let mut untried: Vec<usize> = (0..n).filter(|m| !state.contains(m)).collect();
                    untried.shuffle(&mut rng);
                    for &mv in untried.iter().take(self.config.branching) {
                        if remaining == 0 {
                            break;
                        }
                        let mut prefix = state.clone();
                        prefix.push(mv);
                        // Deterministic completion: remaining moves in
                        // ascending move-list order.
                        let mut completion = prefix.clone();
                        completion.extend((0..n).filter(|m| !prefix.contains(m)));
                        let mut orderings = finalized.clone();
                        orderings[partition] = completion.clone();
                        let schedule = space.schedule_for(code, &orderings);
                        let estimate = ctx.score(code, &schedule)?;
                        remaining -= 1;
                        stats.evaluations += 1;
                        stats.candidates += 1;
                        scored.push(Candidate { prefix, completion, schedule, estimate });
                    }
                }
                if scored.is_empty() {
                    // Budget exhausted before any expansion of this level.
                    break;
                }
                scored.sort_by(|a, b| {
                    candidate_order((&a.estimate, &a.schedule), (&b.estimate, &b.schedule))
                });
                let level_best = &scored[0];
                let improves = partition_best.as_ref().is_none_or(|incumbent| {
                    candidate_order(
                        (&level_best.estimate, &level_best.schedule),
                        (&incumbent.estimate, &incumbent.schedule),
                    ) == std::cmp::Ordering::Less
                });
                if improves {
                    partition_best = Some(Candidate {
                        prefix: level_best.prefix.clone(),
                        completion: level_best.completion.clone(),
                        schedule: level_best.schedule.clone(),
                        estimate: level_best.estimate,
                    });
                }
                match &best {
                    Some((estimate, schedule))
                        if candidate_order(
                            (&level_best.estimate, &level_best.schedule),
                            (estimate, schedule),
                        ) != std::cmp::Ordering::Less => {}
                    _ => {
                        best = Some((level_best.estimate, level_best.schedule.clone()));
                        stats.improvements += 1;
                    }
                }
                frontier = scored.into_iter().take(self.config.width).map(|c| c.prefix).collect();
                // Keep the warm-start ordering alive as an extra frontier
                // member: pruning may discard its prefix, but the next
                // level should still be able to expand along the seed.
                if let Some(orderings) = &seeded {
                    let prefix = &orderings[partition][..(_level + 1).min(n)];
                    if !frontier.iter().any(|state| state == prefix) {
                        frontier.push(prefix.to_vec());
                    }
                }
                if remaining == 0 {
                    // Finalise from the best completion and stop searching.
                    if let Some(c) = &partition_best {
                        finalized[partition] = c.completion.clone();
                    }
                    break 'partitions;
                }
            }
            if let Some(c) = partition_best {
                finalized[partition] = c.completion;
            }
        }

        let (estimate, schedule) = match best {
            Some(found) => found,
            None => {
                // Degenerate budget path: fall back to the assembled
                // placeholder round (one evaluation, granted above the
                // budget only if the budget was entirely consumed by
                // another racer's error path — in practice unreachable
                // because `require_budget` guarantees ≥ 1).
                let schedule = space.schedule_for(code, &finalized);
                let estimate = ctx.score(code, &schedule)?;
                stats.evaluations += 1;
                (estimate, schedule)
            }
        };
        Ok(SynthesisOutcome { schedule, estimate, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynd_circuit::{EstimateOptions, Evaluator, NoiseModel};
    use asynd_codes::{rotated_surface_code, steane_code};
    use asynd_decode::UnionFindFactory;
    use std::sync::Arc;

    fn context() -> ScoreContext {
        let evaluator = Evaluator::new(
            NoiseModel::brisbane(),
            Arc::new(UnionFindFactory::new()),
            300,
            EstimateOptions::default(),
        );
        ScoreContext::new(Arc::new(evaluator), 0xBEA1)
    }

    #[test]
    fn beam_is_deterministic_and_respects_budget() {
        let code = steane_code();
        let synthesizer = BeamSearchSynthesizer::new(BeamConfig { width: 2, branching: 3 });
        let budget = SynthesisBudget::evaluations(25);
        let a = synthesizer.synthesize(&code, &context(), budget, 9).unwrap();
        let b = synthesizer.synthesize(&code, &context(), budget, 9).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.estimate, b.estimate);
        assert!(a.stats.evaluations <= 25);
        a.schedule.validate(&code).unwrap();
    }

    #[test]
    fn truncated_budget_still_returns_a_valid_schedule() {
        let code = rotated_surface_code(3);
        let synthesizer = BeamSearchSynthesizer::default();
        let outcome =
            synthesizer.synthesize(&code, &context(), SynthesisBudget::evaluations(5), 1).unwrap();
        outcome.schedule.validate(&code).unwrap();
        assert!(outcome.stats.evaluations <= 5);
    }

    #[test]
    fn zero_width_is_rejected() {
        let code = steane_code();
        let synthesizer = BeamSearchSynthesizer::new(BeamConfig { width: 0, branching: 1 });
        assert!(matches!(
            synthesizer.synthesize(&code, &context(), SynthesisBudget::evaluations(4), 0),
            Err(SchedulerError::InvalidConfig { .. })
        ));
    }
}

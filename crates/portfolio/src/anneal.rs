//! Simulated-annealing schedule synthesis.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use asynd_circuit::Schedule;
use asynd_codes::StabilizerCode;
use asynd_core::SchedulerError;

use crate::{
    candidate_order, require_budget, ScoreContext, SynthesisBudget, SynthesisOutcome,
    SynthesisStats, Synthesizer,
};
use asynd_core::MoveSpace;

/// Tuning of the annealing synthesizer.
///
/// Temperatures self-scale to the problem: the initial temperature is
/// `temperature_ratio` times the initial schedule's estimated logical
/// error rate, and cooling is geometric so the temperature reaches
/// `final_ratio` of its initial value exactly when the budget runs out.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Initial temperature as a fraction of the initial energy
    /// (`p_overall` of the starting schedule). Must be positive.
    pub temperature_ratio: f64,
    /// Final temperature as a fraction of the initial temperature; the
    /// geometric cooling rate is derived from it and the budget. Must lie
    /// in `(0, 1]`.
    pub final_ratio: f64,
    /// Largest segment length the *reassign* move reshuffles. Must be
    /// at least 2.
    pub segment_max: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig { temperature_ratio: 0.5, final_ratio: 0.01, segment_max: 4 }
    }
}

impl AnnealConfig {
    fn validate(&self) -> Result<(), SchedulerError> {
        if !self.temperature_ratio.is_finite() || self.temperature_ratio <= 0.0 {
            return Err(SchedulerError::InvalidConfig {
                reason: format!(
                    "temperature_ratio must be finite and positive, got {}",
                    self.temperature_ratio
                ),
            });
        }
        if !self.final_ratio.is_finite() || self.final_ratio <= 0.0 || self.final_ratio > 1.0 {
            return Err(SchedulerError::InvalidConfig {
                reason: format!("final_ratio must lie in (0, 1], got {}", self.final_ratio),
            });
        }
        if self.segment_max < 2 {
            return Err(SchedulerError::InvalidConfig {
                reason: format!("segment_max must be at least 2, got {}", self.segment_max),
            });
        }
        Ok(())
    }
}

/// Simulated annealing over valid schedules.
///
/// The state is the per-partition ordering vector of the [`MoveSpace`]
/// (every state assembles to a valid schedule by construction); the
/// neighbourhood is three move kinds drawn uniformly:
///
/// * **tick-shift** — remove one check from its position and reinsert it
///   at another, shifting the ticks of everything in between;
/// * **swap** — exchange two positions of one partition's ordering;
/// * **reassign** — reshuffle a short contiguous segment (up to
///   [`AnnealConfig::segment_max`] checks), a compound re-dealing of a
///   local neighbourhood.
///
/// Energy is the estimated overall logical error rate from the shared
/// [`ScoreContext`]; acceptance is Metropolis
/// (`exp(-ΔE / T)`) under geometric cooling. The best schedule ever
/// visited is returned, not the final state.
#[derive(Debug, Clone, Default)]
pub struct AnnealingSynthesizer {
    /// Annealing parameters.
    pub config: AnnealConfig,
}

impl AnnealingSynthesizer {
    /// Creates the synthesizer with explicit parameters.
    pub fn new(config: AnnealConfig) -> Self {
        AnnealingSynthesizer { config }
    }
}

impl Synthesizer for AnnealingSynthesizer {
    fn name(&self) -> &str {
        "anneal"
    }

    fn synthesize(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        seed: u64,
    ) -> Result<SynthesisOutcome, SchedulerError> {
        self.synthesize_seeded(code, ctx, budget, seed, &[])
    }

    fn synthesize_seeded(
        &self,
        code: &StabilizerCode,
        ctx: &ScoreContext,
        budget: SynthesisBudget,
        seed: u64,
        warm: &[Schedule],
    ) -> Result<SynthesisOutcome, SchedulerError> {
        self.config.validate()?;
        require_budget(budget)?;
        let space = MoveSpace::new(code)?;
        // Warm start: anneal from the first seed that maps onto this
        // code's move space instead of the identity ordering. The seeded
        // state is still scored below like any other — a warm start
        // shifts where the walk begins, never what an estimate means.
        let mut orderings = warm
            .iter()
            .find_map(|schedule| space.orderings_for(schedule))
            .unwrap_or_else(|| space.identity_orderings());
        let mut stats = SynthesisStats::default();

        let mut current_schedule = space.schedule_for(code, &orderings);
        let mut current = ctx.score(code, &current_schedule)?;
        stats.evaluations += 1;
        stats.candidates += 1;
        stats.improvements += 1;
        let mut best_schedule = current_schedule.clone();
        let mut best = current;

        // Partitions with fewer than two moves have no neighbourhood.
        let mutable: Vec<usize> =
            (0..space.num_partitions()).filter(|&p| space.moves_in(p) >= 2).collect();
        if mutable.is_empty() {
            return Ok(SynthesisOutcome { schedule: best_schedule, estimate: best, stats });
        }

        let steps = budget.evaluations - 1;
        // Energies are error rates; floor the scale so zero-failure
        // estimates still anneal.
        let scale = current.p_overall().max(1.0 / (2.0 * ctx.evaluator().shots().max(1) as f64));
        let t_initial = self.config.temperature_ratio * scale;
        let cooling =
            if steps > 1 { self.config.final_ratio.powf(1.0 / (steps as f64 - 1.0)) } else { 1.0 };
        let mut temperature = t_initial;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        for _ in 0..steps {
            // Pick a mutable partition weighted by its move count.
            let weights: u64 = mutable.iter().map(|&p| space.moves_in(p) as u64).sum();
            let mut pick = rng.gen_range(0..weights);
            let mut partition = mutable[0];
            for &p in &mutable {
                let w = space.moves_in(p) as u64;
                if pick < w {
                    partition = p;
                    break;
                }
                pick -= w;
            }
            let len = orderings[partition].len();
            let mut proposal = orderings.clone();
            match rng.gen_range(0..3u8) {
                0 => {
                    // Tick-shift: remove at `from`, reinsert at `to`.
                    let from = rng.gen_range(0..len);
                    let mut to = rng.gen_range(0..len - 1);
                    if to >= from {
                        to += 1;
                    }
                    let mv = proposal[partition].remove(from);
                    proposal[partition].insert(to, mv);
                }
                1 => {
                    // Swap two positions.
                    let a = rng.gen_range(0..len);
                    let mut b = rng.gen_range(0..len - 1);
                    if b >= a {
                        b += 1;
                    }
                    proposal[partition].swap(a, b);
                }
                _ => {
                    // Reassign: reshuffle a short segment.
                    let seg = rng.gen_range(2..=self.config.segment_max.min(len));
                    let start = rng.gen_range(0..=len - seg);
                    proposal[partition][start..start + seg].shuffle(&mut rng);
                }
            }

            let schedule = space.schedule_for(code, &proposal);
            let estimate = ctx.score(code, &schedule)?;
            stats.evaluations += 1;
            stats.candidates += 1;

            let delta = estimate.p_overall() - current.p_overall();
            let accept = delta <= 0.0
                || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp());
            if accept {
                orderings = proposal;
                current = estimate;
                current_schedule = schedule;
                if candidate_order((&current, &current_schedule), (&best, &best_schedule))
                    == std::cmp::Ordering::Less
                {
                    best = current;
                    best_schedule = current_schedule.clone();
                    stats.improvements += 1;
                }
            }
            temperature *= cooling;
        }

        Ok(SynthesisOutcome { schedule: best_schedule, estimate: best, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynd_circuit::{EstimateOptions, Evaluator, NoiseModel};
    use asynd_codes::steane_code;
    use asynd_decode::UnionFindFactory;
    use std::sync::Arc;

    fn context() -> ScoreContext {
        let evaluator = Evaluator::new(
            NoiseModel::brisbane(),
            Arc::new(UnionFindFactory::new()),
            300,
            EstimateOptions::default(),
        );
        ScoreContext::new(Arc::new(evaluator), 0xA11CE)
    }

    #[test]
    fn annealing_is_deterministic_and_respects_budget() {
        let code = steane_code();
        let synthesizer = AnnealingSynthesizer::default();
        let budget = SynthesisBudget::evaluations(20);
        let a = synthesizer.synthesize(&code, &context(), budget, 5).unwrap();
        let b = synthesizer.synthesize(&code, &context(), budget, 5).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.stats.evaluations, 20);
        a.schedule.validate(&code).unwrap();
    }

    #[test]
    fn different_seeds_may_take_different_paths_but_stay_valid() {
        let code = steane_code();
        let synthesizer = AnnealingSynthesizer::default();
        let budget = SynthesisBudget::evaluations(12);
        let ctx = context();
        for seed in 0..3 {
            let outcome = synthesizer.synthesize(&code, &ctx, budget, seed).unwrap();
            outcome.schedule.validate(&code).unwrap();
            assert!(outcome.stats.improvements >= 1);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let code = steane_code();
        let ctx = context();
        let budget = SynthesisBudget::evaluations(4);
        let bad = [
            AnnealConfig { temperature_ratio: 0.0, ..AnnealConfig::default() },
            AnnealConfig { final_ratio: 0.0, ..AnnealConfig::default() },
            AnnealConfig { final_ratio: 1.5, ..AnnealConfig::default() },
            AnnealConfig { segment_max: 1, ..AnnealConfig::default() },
        ];
        for config in bad {
            let synthesizer = AnnealingSynthesizer::new(config.clone());
            assert!(
                matches!(
                    synthesizer.synthesize(&code, &ctx, budget, 0),
                    Err(SchedulerError::InvalidConfig { .. })
                ),
                "expected rejection of {config:?}"
            );
        }
        let synthesizer = AnnealingSynthesizer::default();
        assert!(matches!(
            synthesizer.synthesize(&code, &ctx, SynthesisBudget::evaluations(0), 0),
            Err(SchedulerError::InvalidConfig { .. })
        ));
    }
}

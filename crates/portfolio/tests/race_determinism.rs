//! Acceptance test of the portfolio racer's determinism contract: for a
//! fixed seed the race produces a **bit-identical winning schedule** (and
//! identical per-strategy results) for 1, 2 and 4 worker threads, and
//! with the shared cache disabled.

use std::sync::Arc;

use asynd_circuit::{NoiseModel, Schedule};
use asynd_codes::{rotated_surface_code, steane_code};
use asynd_decode::UnionFindFactory;
use asynd_portfolio::{Portfolio, PortfolioConfig, PortfolioReport};

fn race(
    code: &asynd_codes::StabilizerCode,
    worker_threads: usize,
    capacity: usize,
) -> PortfolioReport {
    race_seeded(code, worker_threads, capacity, &[])
}

fn race_seeded(
    code: &asynd_codes::StabilizerCode,
    worker_threads: usize,
    capacity: usize,
    seeds: &[Schedule],
) -> PortfolioReport {
    let portfolio = Portfolio::standard(PortfolioConfig {
        seed: 42,
        budget_per_strategy: 64,
        shots_per_evaluation: 250,
        eval_cache_capacity: capacity,
        worker_threads,
    });
    portfolio
        .run_seeded(code, &NoiseModel::brisbane(), Arc::new(UnionFindFactory::new()), seeds)
        .unwrap()
}

#[test]
fn winning_schedule_is_bit_identical_for_1_2_and_4_worker_threads() {
    for code in [steane_code(), rotated_surface_code(3)] {
        let serial = race(&code, 1, 1024);
        for threads in [2usize, 4] {
            let raced = race(&code, threads, 1024);
            assert_eq!(raced.winner, serial.winner, "winner index differs at {threads} threads");
            assert_eq!(
                raced.winning().outcome.schedule,
                serial.winning().outcome.schedule,
                "winning schedule differs at {threads} threads"
            );
            assert_eq!(raced.winning().outcome.estimate, serial.winning().outcome.estimate);
            // Not just the winner: every strategy's result is identical.
            for (a, b) in raced.strategies.iter().zip(&serial.strategies) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.outcome.schedule, b.outcome.schedule, "{} diverged", a.name);
                assert_eq!(a.outcome.estimate, b.outcome.estimate, "{} diverged", a.name);
                assert_eq!(a.outcome.stats, b.outcome.stats, "{} counters diverged", a.name);
            }
        }
        serial.winning().outcome.schedule.validate(&code).unwrap();
    }
}

#[test]
fn warm_started_races_are_bit_identical_for_1_2_and_4_worker_threads() {
    let code = steane_code();
    // Seed the race with a prior winner — the warm-start path the
    // registry drives in production.
    let seed_schedule = race(&code, 1, 1024).winning().outcome.schedule.clone();
    let seeds = vec![seed_schedule.clone()];

    let serial = race_seeded(&code, 1, 1024, &seeds);
    for threads in [2usize, 4] {
        let raced = race_seeded(&code, threads, 1024, &seeds);
        assert_eq!(raced.winner, serial.winner, "warm winner differs at {threads} threads");
        for (a, b) in raced.strategies.iter().zip(&serial.strategies) {
            assert_eq!(a.outcome.schedule, b.outcome.schedule, "{} diverged warm", a.name);
            assert_eq!(a.outcome.estimate, b.outcome.estimate, "{} diverged warm", a.name);
            assert_eq!(a.outcome.stats, b.outcome.stats, "{} counters diverged warm", a.name);
        }
    }
    serial.winning().outcome.schedule.validate(&code).unwrap();

    // Warm starts spend through the meters like any evaluation: no
    // strategy exceeds its grant, and the meter still matches the
    // strategy's self-reported spend.
    for s in &serial.strategies {
        assert!(s.metered <= s.granted, "{} overspent warm: {} > {}", s.name, s.metered, s.granted);
        assert_eq!(s.metered, s.outcome.stats.evaluations, "{} meter disagrees warm", s.name);
    }

    // The race with seeds is a different (deterministic) computation
    // than the cold race — but never a worse one for the seed-aware
    // strategies, which hold the seed as their initial incumbent.
    let cold = race(&code, 1, 1024);
    let winner_p = serial.winning().outcome.estimate.p_overall();
    assert!(
        winner_p <= cold.winning().outcome.estimate.p_overall() + 1e-12,
        "warm start made the portfolio worse: {winner_p} vs cold"
    );
}

#[test]
fn unusable_seeds_fall_back_to_the_cold_race() {
    let code = steane_code();
    // A schedule of a different code cannot map onto this move space:
    // every strategy must fall back to its cold start, bit-for-bit.
    let foreign = Schedule::trivial(&rotated_surface_code(3));
    let cold = race(&code, 2, 1024);
    let seeded = race_seeded(&code, 2, 1024, &[foreign]);
    assert_eq!(cold.winner, seeded.winner);
    for (a, b) in cold.strategies.iter().zip(&seeded.strategies) {
        assert_eq!(a.outcome.schedule, b.outcome.schedule, "{} diverged on foreign seed", a.name);
        assert_eq!(a.outcome.estimate, b.outcome.estimate);
        assert_eq!(a.outcome.stats, b.outcome.stats);
    }
}

#[test]
fn cache_sharing_does_not_change_results_only_cost() {
    // Key-derived evaluation seeds make the memo value-neutral: running
    // with the shared cache disabled (capacity 0) must reproduce the
    // exact same schedules and estimates, just without the hits.
    let code = steane_code();
    let shared = race(&code, 4, 1024);
    let unshared = race(&code, 4, 0);
    assert_eq!(shared.winner, unshared.winner);
    for (a, b) in shared.strategies.iter().zip(&unshared.strategies) {
        assert_eq!(a.outcome.schedule, b.outcome.schedule, "{} diverged", a.name);
        assert_eq!(a.outcome.estimate, b.outcome.estimate, "{} diverged", a.name);
    }
    assert_eq!(unshared.evaluator.hits, 0, "capacity 0 cannot hit");
    assert!(shared.evaluator.hits > 0, "the race shares paid-for evaluations");
}

//! Statistical equivalence tests of the batch frame sampler: empirical
//! firing rates must match the analytic marginals of the model within
//! Wilson confidence bounds, on both word-level RNG paths (geometric skip
//! and binary-expansion Bernoulli masks), and everything must be
//! deterministic under a fixed seed.

use asynd_sim::{wilson_interval, BatchSampler, FrameErrorModel, Mechanism};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Analytic probability that detector `d` fires: an odd number of the
/// mechanisms touching it fire, i.e. `(1 - Π(1 - 2pᵢ)) / 2`.
fn detector_marginal(model: &FrameErrorModel, d: usize) -> f64 {
    let product: f64 = model
        .mechanisms()
        .iter()
        .filter(|m| m.detectors.contains(&d))
        .map(|m| 1.0 - 2.0 * m.probability)
        .product();
    (1.0 - product) / 2.0
}

/// A model mixing rare (geometric-path) and common (Bernoulli-path)
/// mechanisms with overlapping signatures.
fn mixed_model() -> FrameErrorModel {
    FrameErrorModel::new(
        4,
        2,
        vec![
            Mechanism { probability: 0.001, detectors: vec![0, 1], observables: vec![0] },
            Mechanism { probability: 0.02, detectors: vec![1, 2], observables: vec![] },
            Mechanism { probability: 0.35, detectors: vec![2, 3], observables: vec![1] },
            Mechanism { probability: 0.6, detectors: vec![0, 3], observables: vec![] },
        ],
    )
    .unwrap()
}

#[test]
fn empirical_detector_rates_match_analytic_marginals() {
    let model = mixed_model();
    let sampler = BatchSampler::new(&model);
    let shots = 400_000;
    let mut rng = ChaCha8Rng::seed_from_u64(1234);
    let batch = sampler.sample(shots, &mut rng);
    for d in 0..model.num_detectors() {
        let fired = batch.detectors.count_ones_row(d);
        let expected = detector_marginal(&model, d);
        // z = 4.4: chance of a false alarm per detector below 1e-5.
        let (lo, hi) = wilson_interval(fired, shots, 4.417);
        assert!(
            lo <= expected && expected <= hi,
            "detector {d}: analytic {expected:.5} outside Wilson [{lo:.5}, {hi:.5}] \
             (observed {:.5})",
            fired as f64 / shots as f64
        );
    }
}

#[test]
fn rare_mechanism_rate_is_right_on_the_geometric_path() {
    // A single p = 1e-3 mechanism over many shots: the skip sampler must
    // neither drop nor double-count fires at word boundaries.
    let model = FrameErrorModel::new(
        1,
        0,
        vec![Mechanism { probability: 1e-3, detectors: vec![0], observables: vec![] }],
    )
    .unwrap();
    let sampler = BatchSampler::new(&model);
    let shots = 1_000_000;
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let batch = sampler.sample(shots, &mut rng);
    let fired = batch.detectors.count_ones_row(0);
    let (lo, hi) = wilson_interval(fired, shots, 4.417);
    assert!(lo <= 1e-3 && 1e-3 <= hi, "rate {} for p = 1e-3", fired as f64 / shots as f64);
}

#[test]
fn batches_are_deterministic_and_seed_sensitive() {
    let model = mixed_model();
    let sampler = BatchSampler::new(&model);
    for shots in [1usize, 63, 64, 65, 4096] {
        let a = sampler.sample(shots, &mut ChaCha8Rng::seed_from_u64(7));
        let b = sampler.sample(shots, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b, "batch of {shots} shots not reproducible");
    }
    let a = sampler.sample(4096, &mut ChaCha8Rng::seed_from_u64(7));
    let c = sampler.sample(4096, &mut ChaCha8Rng::seed_from_u64(8));
    assert_ne!(a, c, "different seeds must differ");
}

#[test]
fn padding_bits_stay_zero_for_ragged_batches() {
    let model = mixed_model();
    let sampler = BatchSampler::new(&model);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for shots in [1usize, 13, 63, 65, 127] {
        let batch = sampler.sample(shots, &mut rng);
        let tail = batch.detectors.tail_mask();
        for d in 0..model.num_detectors() {
            let last = *batch.detectors.row_words(d).last().unwrap();
            assert_eq!(last & !tail, 0, "padding bits set for {shots} shots, detector {d}");
        }
    }
}

//! Property-based tests for the blocked bit-transpose kernel.
//!
//! The kernel is the foundation of the word-parallel batch decoding path:
//! `BatchShots` matrices are shot-major (rows = detectors, bit-columns =
//! shots) and the residual decoders read the transposed, detector-major
//! layout. Everything downstream assumes the transpose is an exact bit
//! permutation that preserves the zero-padding invariant, so those are the
//! properties fuzzed here — including the ragged shapes (widths not a
//! multiple of 64, single row, single column) where blocked kernels
//! typically go wrong.

use asynd_sim::BitMatrix;
use proptest::prelude::*;

/// Dimensions concentrated on the 64-bit word boundaries where blocked
/// kernels typically go wrong, plus arbitrary in-between sizes.
fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        2usize..64,
        Just(64usize),
        65usize..128,
        Just(128usize),
        129usize..141,
    ]
}

/// Deterministic pseudo-random fill (SplitMix64) so a whole matrix is
/// reproducible from (rows, cols, seed) without a quadratic strategy.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut m = BitMatrix::zeros(rows, cols);
    for r in 0..rows {
        let mut word = 0u64;
        for c in 0..cols {
            if c % 64 == 0 {
                word = next();
            }
            m.set(r, c, word >> (c % 64) & 1 == 1);
        }
    }
    m
}

proptest! {
    #[test]
    fn transpose_swaps_every_bit(rows in arb_dim(), cols in arb_dim(), seed in any::<u64>()) {
        let m = random_matrix(rows, cols, seed);
        let t = m.transpose();
        prop_assert_eq!(t.rows(), cols);
        prop_assert_eq!(t.cols(), rows);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(t.get(c, r), m.get(r, c), "bit ({}, {})", r, c);
            }
        }
    }

    #[test]
    fn transpose_roundtrip_is_identity(rows in arb_dim(), cols in arb_dim(), seed in any::<u64>()) {
        let m = random_matrix(rows, cols, seed);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_preserves_padding_invariant(rows in arb_dim(), cols in arb_dim(), seed in any::<u64>()) {
        // Bits past `cols` in the last word of every row must stay zero —
        // the batch pipeline reduces whole words without masking.
        let t = random_matrix(rows, cols, seed).transpose();
        let tail = t.tail_mask();
        for r in 0..t.rows() {
            let words = t.row_words(r);
            prop_assert_eq!(words.last().copied().unwrap_or(0) & !tail, 0, "row {}", r);
        }
    }

    #[test]
    fn transposed_rows_are_column_words(rows in arb_dim(), cols in arb_dim(), seed in any::<u64>()) {
        // The property the residual decoders rely on: a transposed row has
        // the exact packed-word layout of the original column as a BitVec.
        let m = random_matrix(rows, cols, seed);
        let t = m.transpose();
        for c in 0..cols {
            prop_assert_eq!(t.row_words(c), m.column(c).words(), "column {}", c);
        }
    }

    #[test]
    fn single_row_transposes_to_single_column(bits in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut m = BitMatrix::zeros(1, bits.len());
        for (c, &bit) in bits.iter().enumerate() {
            m.set(0, c, bit);
        }
        let t = m.transpose();
        prop_assert_eq!(t.rows(), bits.len());
        prop_assert_eq!(t.cols(), 1);
        for (r, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(t.get(r, 0), bit);
        }
        prop_assert_eq!(t.transpose(), m);
    }

    #[test]
    fn single_column_transposes_to_single_row(bits in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut m = BitMatrix::zeros(bits.len(), 1);
        for (r, &bit) in bits.iter().enumerate() {
            m.set(r, 0, bit);
        }
        let t = m.transpose();
        prop_assert_eq!(t.rows(), 1);
        prop_assert_eq!(t.cols(), bits.len());
        for (c, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(t.get(0, c), bit);
        }
        prop_assert_eq!(t.transpose(), m);
    }
}

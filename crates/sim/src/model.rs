//! The simulator-facing view of a detector error model.

/// One independent error mechanism: with probability `probability` it flips
/// the listed detector and observable rows of every shot in which it fires.
///
/// This mirrors `asynd_circuit::DemError`, but lives here so the simulator
/// does not depend on the circuit layer (the circuit crate converts its DEM
/// into a [`FrameErrorModel`] and hands it down).
#[derive(Debug, Clone, PartialEq)]
pub struct Mechanism {
    /// Probability that the mechanism fires in one shot.
    pub probability: f64,
    /// Indices of the detectors the mechanism flips.
    pub detectors: Vec<usize>,
    /// Indices of the logical observables the mechanism flips.
    pub observables: Vec<usize>,
}

/// A validated set of independent error mechanisms over fixed detector and
/// observable counts — the input of the batch frame simulator.
///
/// # Example
///
/// ```
/// use asynd_sim::{FrameErrorModel, Mechanism};
///
/// let model = FrameErrorModel::new(
///     3,
///     1,
///     vec![Mechanism { probability: 0.25, detectors: vec![0, 2], observables: vec![0] }],
/// )
/// .unwrap();
/// assert_eq!(model.num_detectors(), 3);
/// assert_eq!(model.mechanisms().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FrameErrorModel {
    num_detectors: usize,
    num_observables: usize,
    mechanisms: Vec<Mechanism>,
}

/// Why a [`FrameErrorModel`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A mechanism probability was not a finite value in `[0, 1]`.
    InvalidProbability {
        /// Index of the offending mechanism.
        mechanism: usize,
    },
    /// A detector or observable index was out of range.
    IndexOutOfRange {
        /// Index of the offending mechanism.
        mechanism: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidProbability { mechanism } => {
                write!(f, "mechanism {mechanism} has a probability outside [0, 1]")
            }
            ModelError::IndexOutOfRange { mechanism } => {
                write!(f, "mechanism {mechanism} references an out-of-range detector/observable")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl FrameErrorModel {
    /// Creates a model, validating probabilities and indices.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] if any probability is outside `[0, 1]` or
    /// any index is out of range.
    pub fn new(
        num_detectors: usize,
        num_observables: usize,
        mechanisms: Vec<Mechanism>,
    ) -> Result<Self, ModelError> {
        for (i, m) in mechanisms.iter().enumerate() {
            if !m.probability.is_finite() || !(0.0..=1.0).contains(&m.probability) {
                return Err(ModelError::InvalidProbability { mechanism: i });
            }
            if m.detectors.iter().any(|&d| d >= num_detectors)
                || m.observables.iter().any(|&o| o >= num_observables)
            {
                return Err(ModelError::IndexOutOfRange { mechanism: i });
            }
        }
        Ok(FrameErrorModel { num_detectors, num_observables, mechanisms })
    }

    /// Number of detector rows.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of observable rows.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// The error mechanisms.
    pub fn mechanisms(&self) -> &[Mechanism] {
        &self.mechanisms
    }

    /// Expected number of mechanism firings per shot.
    pub fn expected_error_weight(&self) -> f64 {
        self.mechanisms.iter().map(|m| m.probability).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_probability() {
        let err = FrameErrorModel::new(
            1,
            0,
            vec![Mechanism { probability: 1.5, detectors: vec![0], observables: vec![] }],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::InvalidProbability { mechanism: 0 });
        assert!(err.to_string().contains("probability"));
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let err = FrameErrorModel::new(
            2,
            1,
            vec![
                Mechanism { probability: 0.1, detectors: vec![1], observables: vec![] },
                Mechanism { probability: 0.1, detectors: vec![2], observables: vec![] },
            ],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::IndexOutOfRange { mechanism: 1 });
    }

    #[test]
    fn accepts_boundary_probabilities() {
        let model = FrameErrorModel::new(
            1,
            1,
            vec![
                Mechanism { probability: 0.0, detectors: vec![0], observables: vec![] },
                Mechanism { probability: 1.0, detectors: vec![], observables: vec![0] },
            ],
        )
        .unwrap();
        assert_eq!(model.expected_error_weight(), 1.0);
    }
}

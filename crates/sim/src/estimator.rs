//! Chunked, parallel Monte-Carlo estimation of logical error rates.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{BatchDecoder, BatchSampler, BatchShots, BitMatrix, FrameErrorModel};

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)` bounds for the success probability after observing
/// `successes` out of `trials`, at critical value `z` (1.96 ≈ 95%). Unlike
/// the normal approximation it behaves sensibly at 0 and `trials`
/// successes, which is exactly the regime of low logical error rates.
///
/// # Example
///
/// ```
/// let (lo, hi) = asynd_sim::wilson_interval(0, 1000, 1.96);
/// assert_eq!(lo, 0.0);
/// assert!(hi > 0.0 && hi < 0.01);
/// ```
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Configuration of the [`ParallelEstimator`].
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorConfig {
    /// Shots per chunk. Each chunk is sampled, decoded and scored as one
    /// unit holding `O(chunk_shots × (detectors + observables) / 64)`
    /// words, so memory stays bounded however large the total shot budget.
    pub chunk_shots: usize,
    /// Chunks per wave. Early stopping is evaluated only at wave
    /// boundaries, and the wave size is a fixed constant (not the thread
    /// count), so results never depend on the machine's parallelism.
    pub chunks_per_wave: usize,
    /// Critical value of the Wilson interval (1.96 ≈ 95%).
    pub z: f64,
    /// Early-stop target: when set, estimation stops at the first wave
    /// boundary where the Wilson interval half-width of `p_overall` is at
    /// most `target · max(p_overall, 1/shots_so_far)` (a *relative* bound,
    /// so tight estimates of small rates still take the shots they need).
    pub relative_half_width: Option<f64>,
    /// Upper bound on worker threads (`None`: the machine's parallelism).
    pub max_threads: Option<usize>,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            chunk_shots: 4096,
            chunks_per_wave: 8,
            z: 1.96,
            relative_half_width: None,
            max_threads: None,
        }
    }
}

/// The outcome of a batched logical-error estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchEstimate {
    /// Shots actually evaluated (less than requested only when early
    /// stopping triggered).
    pub shots: usize,
    /// Shots in which an observable in the X block was mispredicted.
    pub x_failures: usize,
    /// Shots in which an observable in the Z block was mispredicted.
    pub z_failures: usize,
    /// Shots in which any observable was mispredicted.
    pub any_failures: usize,
    /// Critical value used for the Wilson interval.
    pub z: f64,
}

impl BatchEstimate {
    /// `failures / shots`, defined as 0 at zero shots (the same
    /// zero-trials discipline as [`wilson_interval`]: estimation always
    /// takes at least one shot, but derived views of an empty estimate
    /// must not produce NaN).
    fn rate(&self, failures: usize) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        failures as f64 / self.shots as f64
    }

    /// Empirical logical X error rate (0 at zero shots).
    pub fn p_x(&self) -> f64 {
        self.rate(self.x_failures)
    }

    /// Empirical logical Z error rate (0 at zero shots).
    pub fn p_z(&self) -> f64 {
        self.rate(self.z_failures)
    }

    /// Empirical overall logical error rate (0 at zero shots).
    pub fn p_overall(&self) -> f64 {
        self.rate(self.any_failures)
    }

    /// Wilson confidence interval of the overall error rate.
    pub fn wilson_overall(&self) -> (f64, f64) {
        wilson_interval(self.any_failures, self.shots, self.z)
    }
}

/// Wall-clock nanoseconds spent in each phase of the estimation pipeline,
/// summed across chunks (and therefore across threads: on `N` workers the
/// totals can exceed the elapsed wall time by up to `N×`).
///
/// Returned by [`ParallelEstimator::estimate_timed`]; kept separate from
/// [`BatchEstimate`] so the estimate itself stays a pure, comparable
/// function of `(model, decoder, seed)` — timings vary run to run, the
/// counts never do.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Nanoseconds spent sampling packed shots.
    pub sample_ns: u64,
    /// Nanoseconds spent in `decode_batch`.
    pub decode_ns: u64,
    /// Nanoseconds spent scoring predictions against the truth rows.
    pub score_ns: u64,
}

impl PhaseTimings {
    /// Sampling time in milliseconds.
    pub fn sample_ms(&self) -> f64 {
        self.sample_ns as f64 / 1e6
    }

    /// Decode time in milliseconds.
    pub fn decode_ms(&self) -> f64 {
        self.decode_ns as f64 / 1e6
    }

    /// Scoring time in milliseconds.
    pub fn score_ms(&self) -> f64 {
        self.score_ns as f64 / 1e6
    }
}

/// Per-chunk failure counts and phase timings (summed across chunks, so
/// aggregation is order-independent and the estimate is deterministic
/// under any thread interleaving; the timing fields ride along and are
/// reported separately).
#[derive(Debug, Clone, Copy, Default)]
struct ChunkCounts {
    shots: usize,
    x_failures: usize,
    z_failures: usize,
    any_failures: usize,
    sample_ns: u64,
    decode_ns: u64,
    score_ns: u64,
}

impl ChunkCounts {
    fn add(&mut self, other: ChunkCounts) {
        self.shots += other.shots;
        self.x_failures += other.x_failures;
        self.z_failures += other.z_failures;
        self.any_failures += other.any_failures;
        self.sample_ns += other.sample_ns;
        self.decode_ns += other.decode_ns;
        self.score_ns += other.score_ns;
    }
}

/// Streams chunks of packed shots through a [`BatchDecoder`] in parallel
/// and accumulates logical failure counts.
///
/// The shot budget is split into fixed-size chunks; each chunk gets an
/// independent ChaCha8 RNG derived from the caller's seed and the chunk
/// index (SplitMix64 mixing), is sampled with the word-packed
/// [`BatchSampler`], decoded, and scored with word-parallel XOR/OR
/// reductions. Workers pull chunk indices from an atomic counter
/// (shared-nothing except the final sums), so the result is identical for
/// any thread count — including one.
///
/// # Example
///
/// ```
/// use asynd_sim::{
///     BatchDecoder, EstimatorConfig, FrameErrorModel, Mechanism, ParallelEstimator,
/// };
/// use asynd_pauli::BitVec;
///
/// struct Blind; // always predicts "no flip"
/// impl BatchDecoder for Blind {
///     fn decode_shot(&self, _d: &BitVec) -> BitVec {
///         BitVec::zeros(1)
///     }
/// }
///
/// let model = FrameErrorModel::new(
///     1,
///     1,
///     vec![Mechanism { probability: 0.1, detectors: vec![0], observables: vec![0] }],
/// )
/// .unwrap();
/// let estimate =
///     ParallelEstimator::new(EstimatorConfig::default()).estimate(&model, &Blind, 1, 20_000, 7);
/// assert_eq!(estimate.shots, 20_000);
/// let (lo, hi) = estimate.wilson_overall();
/// assert!(lo < 0.1 && 0.1 < hi, "true rate inside the Wilson interval");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParallelEstimator {
    config: EstimatorConfig,
}

impl ParallelEstimator {
    /// Creates an estimator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_shots` or `chunks_per_wave` is zero.
    pub fn new(config: EstimatorConfig) -> Self {
        assert!(config.chunk_shots > 0, "chunk_shots must be positive");
        assert!(config.chunks_per_wave > 0, "chunks_per_wave must be positive");
        ParallelEstimator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Estimates logical error rates over `shots` Monte-Carlo shots.
    ///
    /// Observable rows `0..split_x` form the X block (logical-Z readouts)
    /// and rows `split_x..` the Z block, matching the circuit layer's
    /// convention. `seed` fully determines the result.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn estimate<D>(
        &self,
        model: &FrameErrorModel,
        decoder: &D,
        split_x: usize,
        shots: usize,
        seed: u64,
    ) -> BatchEstimate
    where
        D: BatchDecoder + Sync + ?Sized,
    {
        self.estimate_timed(model, decoder, split_x, shots, seed).0
    }

    /// Like [`Self::estimate`], but also reports the per-phase
    /// sample/decode/score wall-clock totals (see [`PhaseTimings`]).
    ///
    /// The returned estimate is bit-identical to [`Self::estimate`]'s:
    /// timing instrumentation never influences chunking, seeding or
    /// accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn estimate_timed<D>(
        &self,
        model: &FrameErrorModel,
        decoder: &D,
        split_x: usize,
        shots: usize,
        seed: u64,
    ) -> (BatchEstimate, PhaseTimings)
    where
        D: BatchDecoder + Sync + ?Sized,
    {
        assert!(shots > 0, "shots must be positive");
        let sampler = BatchSampler::new(model);
        let chunk_shots = self.config.chunk_shots;
        let num_chunks = shots.div_ceil(chunk_shots);
        let last_chunk_shots = shots - (num_chunks - 1) * chunk_shots;

        let run_chunk = |chunk: usize| -> ChunkCounts {
            let chunk_shots = if chunk + 1 == num_chunks { last_chunk_shots } else { chunk_shots };
            let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(seed, chunk as u64));
            let t = std::time::Instant::now();
            let batch = sampler.sample(chunk_shots, &mut rng);
            let sample_ns = t.elapsed().as_nanos() as u64;
            let t = std::time::Instant::now();
            let predictions = decoder.decode_batch(&batch);
            let decode_ns = t.elapsed().as_nanos() as u64;
            let t = std::time::Instant::now();
            let mut counts = score_chunk(&batch, &predictions, split_x, chunk_shots);
            counts.sample_ns = sample_ns;
            counts.decode_ns = decode_ns;
            counts.score_ns = t.elapsed().as_nanos() as u64;
            counts
        };

        let threads =
            self.config.max_threads.unwrap_or_else(rayon::current_num_threads).clamp(1, num_chunks);
        let mut total = ChunkCounts::default();
        let mut next_wave_start = 0usize;
        while next_wave_start < num_chunks {
            let wave_end = (next_wave_start + self.config.chunks_per_wave).min(num_chunks);
            total.add(run_wave(next_wave_start, wave_end, threads, &run_chunk));
            next_wave_start = wave_end;
            if let Some(target) = self.config.relative_half_width {
                let (lo, hi) = wilson_interval(total.any_failures, total.shots, self.config.z);
                let p =
                    (total.any_failures as f64 / total.shots as f64).max(1.0 / total.shots as f64);
                if (hi - lo) / 2.0 <= target * p {
                    break;
                }
            }
        }
        (
            BatchEstimate {
                shots: total.shots,
                x_failures: total.x_failures,
                z_failures: total.z_failures,
                any_failures: total.any_failures,
                z: self.config.z,
            },
            PhaseTimings {
                sample_ns: total.sample_ns,
                decode_ns: total.decode_ns,
                score_ns: total.score_ns,
            },
        )
    }
}

/// Derives a decorrelated sub-seed from a master seed and an index
/// (SplitMix64 finalizer over `seed ⊕ index·φ`).
///
/// This is the workspace's one seed-derivation function: the
/// [`ParallelEstimator`] derives per-chunk RNGs from `(seed, chunk index)`
/// and the MCTS scheduler derives per-iteration RNGs from
/// `(seed, global iteration index)`. Deriving from indices — never from
/// thread identity — is what makes every parallel pipeline in the
/// workspace bit-identical for any thread count.
///
/// # Example
///
/// ```
/// let a = asynd_sim::mix_seed(7, 0);
/// let b = asynd_sim::mix_seed(7, 1);
/// assert_ne!(a, b, "consecutive indices decorrelate");
/// assert_eq!(a, asynd_sim::mix_seed(7, 0), "pure function of (seed, index)");
/// ```
pub fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs chunks `[start, end)` on up to `threads` workers pulling from an
/// atomic counter; sums the per-chunk counts.
fn run_wave<F>(start: usize, end: usize, threads: usize, run_chunk: &F) -> ChunkCounts
where
    F: Fn(usize) -> ChunkCounts + Sync,
{
    let workers = threads.min(end - start);
    if workers <= 1 {
        let mut total = ChunkCounts::default();
        for chunk in start..end {
            total.add(run_chunk(chunk));
        }
        return total;
    }
    let next = AtomicUsize::new(start);
    let total = Mutex::new(ChunkCounts::default());
    rayon::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local = ChunkCounts::default();
                loop {
                    let chunk = next.fetch_add(1, Ordering::Relaxed);
                    if chunk >= end {
                        break;
                    }
                    local.add(run_chunk(chunk));
                }
                total.lock().expect("estimator accumulator poisoned").add(local);
            });
        }
    });
    Mutex::into_inner(total).expect("estimator accumulator poisoned")
}

/// Scores one decoded chunk with word-parallel reductions: for each shot
/// word, OR the prediction⊕truth differences of the X rows and Z rows
/// separately, then popcount the failure masks.
fn score_chunk(
    batch: &BatchShots,
    predictions: &BitMatrix,
    split_x: usize,
    shots: usize,
) -> ChunkCounts {
    let truth = &batch.observables;
    debug_assert_eq!(predictions.rows(), truth.rows());
    debug_assert_eq!(predictions.cols(), truth.cols());
    let mut counts = ChunkCounts { shots, ..ChunkCounts::default() };
    let words = truth.words_per_row();
    for w in 0..words {
        let mut x_bad = 0u64;
        let mut z_bad = 0u64;
        for r in 0..truth.rows() {
            let diff = truth.row_words(r)[w] ^ predictions.row_words(r)[w];
            if r < split_x {
                x_bad |= diff;
            } else {
                z_bad |= diff;
            }
        }
        if w + 1 == words {
            // A word-parallel decode_batch override may legitimately write
            // whole words; never let padding bits past the shot count read
            // as failures.
            x_bad &= truth.tail_mask();
            z_bad &= truth.tail_mask();
        }
        counts.x_failures += x_bad.count_ones() as usize;
        counts.z_failures += z_bad.count_ones() as usize;
        counts.any_failures += (x_bad | z_bad).count_ones() as usize;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mechanism;
    use asynd_pauli::BitVec;

    /// Always predicts "no observable flipped".
    struct Blind {
        observables: usize,
    }

    impl BatchDecoder for Blind {
        fn decode_shot(&self, _detectors: &BitVec) -> BitVec {
            BitVec::zeros(self.observables)
        }
    }

    fn two_block_model(p_x: f64, p_z: f64) -> FrameErrorModel {
        FrameErrorModel::new(
            2,
            2,
            vec![
                Mechanism { probability: p_x, detectors: vec![0], observables: vec![0] },
                Mechanism { probability: p_z, detectors: vec![1], observables: vec![1] },
            ],
        )
        .unwrap()
    }

    #[test]
    fn blind_decoder_failure_rates_match_mechanism_probabilities() {
        let model = two_block_model(0.02, 0.15);
        let estimator = ParallelEstimator::default();
        let estimate = estimator.estimate(&model, &Blind { observables: 2 }, 1, 100_000, 3);
        assert_eq!(estimate.shots, 100_000);
        assert!((estimate.p_x() - 0.02).abs() < 0.005, "p_x {}", estimate.p_x());
        assert!((estimate.p_z() - 0.15).abs() < 0.01, "p_z {}", estimate.p_z());
        // any = 1 - (1-p_x)(1-p_z)
        let expected = 1.0 - (1.0 - 0.02) * (1.0 - 0.15);
        assert!(
            (estimate.p_overall() - expected).abs() < 0.01,
            "p_overall {}",
            estimate.p_overall()
        );
        let (lo, hi) = estimate.wilson_overall();
        assert!(lo <= estimate.p_overall() && estimate.p_overall() <= hi);
    }

    #[test]
    fn deterministic_and_thread_count_independent() {
        let model = two_block_model(0.01, 0.03);
        let serial = ParallelEstimator::new(EstimatorConfig {
            max_threads: Some(1),
            ..EstimatorConfig::default()
        });
        let parallel = ParallelEstimator::new(EstimatorConfig {
            max_threads: Some(4),
            ..EstimatorConfig::default()
        });
        let a = serial.estimate(&model, &Blind { observables: 2 }, 1, 30_000, 42);
        let b = parallel.estimate(&model, &Blind { observables: 2 }, 1, 30_000, 42);
        assert_eq!(a, b, "thread count must not change the estimate");
        let c = serial.estimate(&model, &Blind { observables: 2 }, 1, 30_000, 43);
        assert_ne!(a, c, "different seeds must change the sample");
    }

    #[test]
    fn early_stop_reduces_shots_on_high_rates() {
        // p ≈ 0.5 needs few shots for a 20% relative half-width.
        let model = two_block_model(0.5, 0.5);
        let estimator = ParallelEstimator::new(EstimatorConfig {
            relative_half_width: Some(0.2),
            chunk_shots: 512,
            chunks_per_wave: 2,
            ..EstimatorConfig::default()
        });
        let estimate = estimator.estimate(&model, &Blind { observables: 2 }, 1, 1_000_000, 5);
        assert!(estimate.shots < 1_000_000, "early stop never triggered");
        assert!(estimate.shots >= 1024, "at least one wave must complete");
        assert!((estimate.p_overall() - 0.75).abs() < 0.1);
    }

    #[test]
    fn remainder_chunk_is_counted_exactly() {
        let model = two_block_model(1.0, 0.0);
        let estimator = ParallelEstimator::new(EstimatorConfig {
            chunk_shots: 100,
            ..EstimatorConfig::default()
        });
        // 250 shots = chunks of 100, 100, 50; p_x = 1 ⇒ every shot fails.
        let estimate = estimator.estimate(&model, &Blind { observables: 2 }, 1, 250, 0);
        assert_eq!(estimate.shots, 250);
        assert_eq!(estimate.x_failures, 250);
        assert_eq!(estimate.z_failures, 0);
        assert_eq!(estimate.any_failures, 250);
    }

    #[test]
    fn zero_trials_never_produce_nan() {
        // Zero trials yield the vacuous interval — even with nonzero
        // "successes", which a buggy caller could hand in.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        assert_eq!(wilson_interval(7, 0, 1.96), (0.0, 1.0));
        let empty =
            BatchEstimate { shots: 0, x_failures: 0, z_failures: 0, any_failures: 0, z: 1.96 };
        assert_eq!(empty.p_x(), 0.0);
        assert_eq!(empty.p_z(), 0.0);
        assert_eq!(empty.p_overall(), 0.0);
        assert_eq!(empty.wilson_overall(), (0.0, 1.0));
    }

    #[test]
    fn wilson_interval_basic_properties() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.95 && hi > 1.0 - 1e-9);
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        // Interval narrows with more trials.
        let (lo2, hi2) = wilson_interval(500, 1000, 1.96);
        assert!(hi2 - lo2 < hi - lo);
    }
}

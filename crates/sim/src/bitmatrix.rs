//! A dense bit matrix whose columns are shots packed across `u64` words.

use asynd_pauli::BitVec;

/// Bits per machine word.
pub const WORD_BITS: usize = 64;

/// A `rows × cols` bit matrix stored row-major with 64 columns per word.
///
/// This is the transposed, batched layout of the frame simulator: one row
/// per detector (or observable), one *bit-column* per shot, so flipping a
/// detector for 64 shots at once is a single XOR of a word. Padding bits
/// past `cols` in the last word of each row are kept zero, so
/// `count_ones_row` and word-wise reductions need no masking.
///
/// # Example
///
/// ```
/// use asynd_sim::BitMatrix;
///
/// let mut m = BitMatrix::zeros(2, 100);
/// m.xor_row_word(0, 1, 0b1010);
/// assert!(m.get(0, 65));
/// assert!(!m.get(0, 64));
/// assert_eq!(m.count_ones_row(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS);
        BitMatrix { rows, cols, words_per_row, words: vec![0u64; rows * words_per_row] }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` words in each row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The mask of valid bits in the last word of a row (all ones when
    /// `cols` is a multiple of 64).
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        let rem = self.cols % WORD_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable access to the packed words of row `r`.
    ///
    /// Callers must keep the padding bits past `cols` zero (mask with
    /// [`Self::tail_mask`] when writing the last word).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// XORs `mask` into word `w` of row `r` — the frame simulator's core
    /// operation: one call flips up to 64 shots of one detector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the mask would set padding bits of the
    /// last word; panics if `r` or `w` is out of range.
    #[inline]
    pub fn xor_row_word(&mut self, r: usize, w: usize, mask: u64) {
        debug_assert!(
            w + 1 < self.words_per_row || mask & !self.tail_mask() == 0,
            "mask sets padding bits past column {}",
            self.cols
        );
        let words_per_row = self.words_per_row;
        assert!(w < words_per_row, "word {w} out of range for {words_per_row} words per row");
        self.words[r * words_per_row + w] ^= mask;
    }

    /// Reads the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols, "column {c} out of range for {} columns", self.cols);
        (self.row_words(r)[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Writes the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(c < self.cols, "column {c} out of range for {} columns", self.cols);
        let word = &mut self.row_words_mut(r)[c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits in row `r`.
    pub fn count_ones_row(&self, r: usize) -> usize {
        self.row_words(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Extracts column `c` (one shot) as a [`BitVec`] of length `rows()`.
    pub fn column(&self, c: usize) -> BitVec {
        assert!(c < self.cols, "column {c} out of range for {} columns", self.cols);
        let word = c / WORD_BITS;
        let bit = c % WORD_BITS;
        BitVec::from_bools(
            (0..self.rows).map(|r| (self.words[r * self.words_per_row + word] >> bit) & 1 == 1),
        )
    }

    /// Packs a [`BitVec`] into column `c` (inverse of [`Self::column`]).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows()` or `c` is out of range.
    pub fn set_column(&mut self, c: usize, v: &BitVec) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for (r, bit) in v.iter().enumerate() {
            self.set(r, c, bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_get_set() {
        let mut m = BitMatrix::zeros(3, 130);
        m.set(2, 129, true);
        m.set(0, 0, true);
        assert!(m.get(2, 129));
        assert!(m.get(0, 0));
        assert!(!m.get(1, 64));
        m.set(2, 129, false);
        assert_eq!(m.count_ones_row(2), 0);
    }

    #[test]
    fn column_gathers_across_rows() {
        let mut m = BitMatrix::zeros(4, 70);
        m.set(1, 65, true);
        m.set(3, 65, true);
        let col = m.column(65);
        assert_eq!(col.ones().collect::<Vec<_>>(), vec![1, 3]);
        let mut other = BitMatrix::zeros(4, 70);
        other.set_column(65, &col);
        assert_eq!(m, other);
    }

    #[test]
    fn xor_word_flips_shots() {
        let mut m = BitMatrix::zeros(2, 128);
        m.xor_row_word(1, 1, u64::MAX);
        assert_eq!(m.count_ones_row(1), 64);
        m.xor_row_word(1, 1, u64::MAX);
        assert_eq!(m.count_ones_row(1), 0);
    }

    #[test]
    fn tail_mask_matches_columns() {
        assert_eq!(BitMatrix::zeros(1, 64).tail_mask(), u64::MAX);
        assert_eq!(BitMatrix::zeros(1, 65).tail_mask(), 1);
        assert_eq!(BitMatrix::zeros(1, 3).tail_mask(), 0b111);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let m = BitMatrix::zeros(2, 10);
        let _ = m.get(0, 10);
    }
}

//! A dense bit matrix whose columns are shots packed across `u64` words.

use asynd_pauli::BitVec;

/// Bits per machine word.
pub const WORD_BITS: usize = 64;

/// A `rows × cols` bit matrix stored row-major with 64 columns per word.
///
/// This is the transposed, batched layout of the frame simulator: one row
/// per detector (or observable), one *bit-column* per shot, so flipping a
/// detector for 64 shots at once is a single XOR of a word. Padding bits
/// past `cols` in the last word of each row are kept zero, so
/// `count_ones_row` and word-wise reductions need no masking.
///
/// # Example
///
/// ```
/// use asynd_sim::BitMatrix;
///
/// let mut m = BitMatrix::zeros(2, 100);
/// m.xor_row_word(0, 1, 0b1010);
/// assert!(m.get(0, 65));
/// assert!(!m.get(0, 64));
/// assert_eq!(m.count_ones_row(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS);
        BitMatrix { rows, cols, words_per_row, words: vec![0u64; rows * words_per_row] }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (bits per row).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` words in each row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The mask of valid bits in the last word of a row (all ones when
    /// `cols` is a multiple of 64).
    #[inline]
    pub fn tail_mask(&self) -> u64 {
        let rem = self.cols % WORD_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable access to the packed words of row `r`.
    ///
    /// Callers must keep the padding bits past `cols` zero (mask with
    /// [`Self::tail_mask`] when writing the last word).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &mut self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// XORs `mask` into word `w` of row `r` — the frame simulator's core
    /// operation: one call flips up to 64 shots of one detector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the mask would set padding bits of the
    /// last word; panics if `r` or `w` is out of range.
    #[inline]
    pub fn xor_row_word(&mut self, r: usize, w: usize, mask: u64) {
        debug_assert!(
            w + 1 < self.words_per_row || mask & !self.tail_mask() == 0,
            "mask sets padding bits past column {}",
            self.cols
        );
        let words_per_row = self.words_per_row;
        assert!(w < words_per_row, "word {w} out of range for {words_per_row} words per row");
        self.words[r * words_per_row + w] ^= mask;
    }

    /// Reads the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(c < self.cols, "column {c} out of range for {} columns", self.cols);
        (self.row_words(r)[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Writes the bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(c < self.cols, "column {c} out of range for {} columns", self.cols);
        let word = &mut self.row_words_mut(r)[c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits in row `r`.
    pub fn count_ones_row(&self, r: usize) -> usize {
        self.row_words(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Extracts column `c` (one shot) as a [`BitVec`] of length `rows()`.
    pub fn column(&self, c: usize) -> BitVec {
        assert!(c < self.cols, "column {c} out of range for {} columns", self.cols);
        let word = c / WORD_BITS;
        let bit = c % WORD_BITS;
        BitVec::from_bools(
            (0..self.rows).map(|r| (self.words[r * self.words_per_row + word] >> bit) & 1 == 1),
        )
    }

    /// Packs a [`BitVec`] into column `c` (inverse of [`Self::column`]).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows()` or `c` is out of range.
    pub fn set_column(&mut self, c: usize, v: &BitVec) {
        assert_eq!(v.len(), self.rows, "column length mismatch");
        for (r, bit) in v.iter().enumerate() {
            self.set(r, c, bit);
        }
    }

    /// Transposes the matrix: returns a `cols × rows` matrix whose bit
    /// `(c, r)` equals this matrix's bit `(r, c)`.
    ///
    /// The kernel is blocked: 64 row-words are gathered into a 64×64 bit
    /// block (one cache line sweep per block column), transposed in
    /// registers by recursive quadrant swaps, and scattered to the output.
    /// Ragged edges — row or column counts not divisible by 64 — ride
    /// through as zero-padded partial blocks: input padding bits are zero
    /// by invariant, so output padding bits come out zero without masking.
    ///
    /// This is the shot-major ⇄ detector-major bridge of the batch decode
    /// path: a transposed shot row has the exact word layout of a
    /// detector-length `BitVec`.
    ///
    /// # Example
    ///
    /// ```
    /// use asynd_sim::BitMatrix;
    ///
    /// let mut m = BitMatrix::zeros(3, 100);
    /// m.set(2, 99, true);
    /// let t = m.transpose();
    /// assert_eq!((t.rows(), t.cols()), (100, 3));
    /// assert!(t.get(99, 2));
    /// assert_eq!(t.transpose(), m);
    /// ```
    pub fn transpose(&self) -> BitMatrix {
        let mut out = BitMatrix::zeros(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        let out_words_per_row = out.words_per_row;
        let mut block = [0u64; WORD_BITS];
        for row_block in 0..self.rows.div_ceil(WORD_BITS) {
            let r0 = row_block * WORD_BITS;
            let rows_here = (self.rows - r0).min(WORD_BITS);
            for col_word in 0..self.words_per_row {
                for (i, slot) in block.iter_mut().enumerate().take(rows_here) {
                    *slot = self.words[(r0 + i) * self.words_per_row + col_word];
                }
                for slot in block.iter_mut().skip(rows_here) {
                    *slot = 0;
                }
                transpose64(&mut block);
                let c0 = col_word * WORD_BITS;
                let cols_here = (self.cols - c0).min(WORD_BITS);
                for (j, &word) in block.iter().enumerate().take(cols_here) {
                    out.words[(c0 + j) * out_words_per_row + row_block] = word;
                }
            }
        }
        out
    }
}

/// In-place transpose of a 64×64 bit block (`a[i]` bit `j` ⇄ `a[j]` bit
/// `i`): log₂(64) rounds of quadrant swaps at shrinking granularity, the
/// LSB-first form of the Hacker's Delight §7-3 kernel.
fn transpose64(a: &mut [u64; WORD_BITS]) {
    let mut j = WORD_BITS / 2;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        for k in 0..WORD_BITS {
            if k & j != 0 {
                continue;
            }
            // Swap the (rows without bit j, columns with bit j) quadrant
            // with its mirror using the three-XOR exchange.
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_get_set() {
        let mut m = BitMatrix::zeros(3, 130);
        m.set(2, 129, true);
        m.set(0, 0, true);
        assert!(m.get(2, 129));
        assert!(m.get(0, 0));
        assert!(!m.get(1, 64));
        m.set(2, 129, false);
        assert_eq!(m.count_ones_row(2), 0);
    }

    #[test]
    fn column_gathers_across_rows() {
        let mut m = BitMatrix::zeros(4, 70);
        m.set(1, 65, true);
        m.set(3, 65, true);
        let col = m.column(65);
        assert_eq!(col.ones().collect::<Vec<_>>(), vec![1, 3]);
        let mut other = BitMatrix::zeros(4, 70);
        other.set_column(65, &col);
        assert_eq!(m, other);
    }

    #[test]
    fn xor_word_flips_shots() {
        let mut m = BitMatrix::zeros(2, 128);
        m.xor_row_word(1, 1, u64::MAX);
        assert_eq!(m.count_ones_row(1), 64);
        m.xor_row_word(1, 1, u64::MAX);
        assert_eq!(m.count_ones_row(1), 0);
    }

    #[test]
    fn tail_mask_matches_columns() {
        assert_eq!(BitMatrix::zeros(1, 64).tail_mask(), u64::MAX);
        assert_eq!(BitMatrix::zeros(1, 65).tail_mask(), 1);
        assert_eq!(BitMatrix::zeros(1, 3).tail_mask(), 0b111);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let m = BitMatrix::zeros(2, 10);
        let _ = m.get(0, 10);
    }

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        // SplitMix64 stream, tail-masked to preserve the padding invariant.
        let mut m = BitMatrix::zeros(rows, cols);
        let mut state = seed;
        let tail = m.tail_mask();
        let words_per_row = m.words_per_row();
        for r in 0..rows {
            for w in 0..words_per_row {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let mask = if w + 1 == words_per_row { z & tail } else { z };
                m.xor_row_word(r, w, mask);
            }
        }
        m
    }

    #[test]
    fn transpose_swaps_every_bit() {
        for &(rows, cols) in &[(1, 1), (3, 100), (64, 64), (65, 129), (48, 1024), (130, 7)] {
            let m = pseudo_random_matrix(rows, cols, (rows * 1000 + cols) as u64);
            let t = m.transpose();
            assert_eq!((t.rows(), t.cols()), (cols, rows));
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(m.get(r, c), t.get(c, r), "bit ({r}, {c}) of {rows}x{cols}");
                }
            }
            assert_eq!(t.transpose(), m, "roundtrip of {rows}x{cols}");
        }
    }

    #[test]
    fn transpose_preserves_padding_invariant() {
        let m = pseudo_random_matrix(70, 70, 42);
        let t = m.transpose();
        assert_eq!(t.row_words(3)[1] & !t.tail_mask(), 0, "padding bits must stay zero");
    }

    #[test]
    fn transpose_empty_dimensions() {
        assert_eq!(BitMatrix::zeros(0, 5).transpose(), BitMatrix::zeros(5, 0));
        assert_eq!(BitMatrix::zeros(5, 0).transpose(), BitMatrix::zeros(0, 5));
    }

    #[test]
    fn transposed_row_matches_column_words() {
        // The load-bearing property of the batch decode path: a transposed
        // shot row has the same packed words as a column() gather.
        let m = pseudo_random_matrix(48, 300, 7);
        let t = m.transpose();
        for c in [0, 63, 64, 299] {
            assert_eq!(t.row_words(c), m.column(c).words());
        }
    }
}

//! The bit-packed batch frame sampler.
//!
//! Shots are packed across the bits of `u64` words (one word = 64 shots).
//! For every error mechanism the sampler draws a *fire mask* per word — one
//! bit per shot in which the mechanism fires — and XORs the mechanism's
//! detector/observable signature into the affected word-columns of the
//! output matrices. This replaces the scalar path's one-`f64`-per-shot-
//! per-mechanism loop with two word-level strategies:
//!
//! * **Geometric skip sampling** (rare mechanisms, `p ≤ 0.25`): the gap
//!   between consecutive firing shots is geometric, so the sampler jumps
//!   directly from fire to fire with one uniform draw each. Cost is
//!   `O(p · shots)` RNG work instead of `O(shots)` — for circuit-level
//!   noise (`p ~ 1e-3`) that is a ~1000× reduction in random-number draws.
//! * **Binary-expansion Bernoulli masks** (common mechanisms, `p > 0.25`):
//!   a word whose bits are each set with probability `p` is built from
//!   [`BERNOULLI_BITS`] uniform words by Horner-evaluating the binary
//!   expansion of `p` with AND/OR (with probability ½ a fresh coin decides
//!   "use this expansion bit", halving the remaining expansion each step).
//!   Cost is a constant ~48 draws per 64 shots regardless of `p`.

use rand::Rng;

use crate::{BitMatrix, FrameErrorModel, WORD_BITS};

/// Mechanisms at or below this probability use geometric skip sampling;
/// denser mechanisms use binary-expansion Bernoulli masks (whose fixed cost
/// of [`BERNOULLI_BITS`] draws per word wins once `p · 64` exceeds it).
pub const GEOMETRIC_THRESHOLD: f64 = 0.25;

/// Bits of the probability's binary expansion used by the mask generator.
/// The truncation bias is `≤ 2⁻⁴⁸ ≈ 3.6e-15` absolute — far below the
/// Monte-Carlo resolution of any realistic shot budget.
pub const BERNOULLI_BITS: u32 = 48;

/// One batch of sampled shots in packed form.
///
/// `detectors` has one row per detector and one bit-column per shot;
/// `observables` likewise. Column `s` of both matrices together is shot `s`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchShots {
    /// Detector outcomes: `num_detectors × shots` bits.
    pub detectors: BitMatrix,
    /// True observable flips: `num_observables × shots` bits.
    pub observables: BitMatrix,
}

impl BatchShots {
    /// Number of shots in the batch.
    pub fn num_shots(&self) -> usize {
        self.detectors.cols()
    }

    /// Unpacks shot `s`'s detector outcomes.
    pub fn shot_detectors(&self, s: usize) -> asynd_pauli::BitVec {
        self.detectors.column(s)
    }

    /// Unpacks shot `s`'s true observable flips.
    pub fn shot_observables(&self, s: usize) -> asynd_pauli::BitVec {
        self.observables.column(s)
    }
}

/// Per-mechanism sampling plan, precomputed once per model.
#[derive(Debug, Clone)]
enum FirePlan {
    /// Never fires (`p ≤ 0`).
    Never,
    /// Fires every shot (`p ≥ 1`).
    Always,
    /// Geometric skip sampling; caches `1 / ln(1 - p)`.
    Geometric { inv_ln_one_minus_p: f64 },
    /// Binary-expansion mask; caches the expansion of `p`, bit `k` of the
    /// word holding expansion bit `b_{k+1}` (weight `2^-(k+1)`).
    Bernoulli { expansion: u64 },
}

#[derive(Debug, Clone)]
struct MechanismPlan {
    plan: FirePlan,
    detectors: Vec<usize>,
    observables: Vec<usize>,
}

/// Samples batches of shots from a [`FrameErrorModel`].
///
/// Construction precomputes a per-mechanism plan; `sample` may then be
/// called many times (and from many threads — the sampler is `Sync`) with
/// independent RNGs.
///
/// # Determinism
///
/// For a fixed RNG state, `sample(shots, rng)` is a pure function: the RNG
/// is consumed mechanism by mechanism in model order, so equal seeds give
/// equal batches. Batches of different sizes consume different streams and
/// are *not* prefixes of one another.
///
/// # Example
///
/// ```
/// use asynd_sim::{BatchSampler, FrameErrorModel, Mechanism};
/// use rand::SeedableRng;
///
/// let model = FrameErrorModel::new(
///     2,
///     1,
///     vec![Mechanism { probability: 0.5, detectors: vec![0, 1], observables: vec![0] }],
/// )
/// .unwrap();
/// let sampler = BatchSampler::new(&model);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let batch = sampler.sample(1000, &mut rng);
/// // The mechanism flips detectors 0 and 1 together in every firing shot.
/// assert_eq!(batch.detectors.row_words(0), batch.detectors.row_words(1));
/// assert_eq!(batch.detectors.row_words(0), batch.observables.row_words(0));
/// ```
#[derive(Debug, Clone)]
pub struct BatchSampler {
    num_detectors: usize,
    num_observables: usize,
    plans: Vec<MechanismPlan>,
}

impl BatchSampler {
    /// Builds the sampling plans for `model`.
    pub fn new(model: &FrameErrorModel) -> Self {
        let plans = model
            .mechanisms()
            .iter()
            .map(|m| {
                let p = m.probability;
                let plan = if p <= 0.0 {
                    FirePlan::Never
                } else if p >= 1.0 {
                    FirePlan::Always
                } else if p <= GEOMETRIC_THRESHOLD {
                    FirePlan::Geometric { inv_ln_one_minus_p: 1.0 / (1.0 - p).ln() }
                } else {
                    FirePlan::Bernoulli { expansion: probability_expansion(p) }
                };
                MechanismPlan {
                    plan,
                    detectors: m.detectors.clone(),
                    observables: m.observables.clone(),
                }
            })
            .collect();
        BatchSampler {
            num_detectors: model.num_detectors(),
            num_observables: model.num_observables(),
            plans,
        }
    }

    /// Samples `shots` independent shots into packed matrices.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn sample<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> BatchShots {
        assert!(shots > 0, "cannot sample an empty batch");
        let mut detectors = BitMatrix::zeros(self.num_detectors, shots);
        let mut observables = BitMatrix::zeros(self.num_observables, shots);
        let words = shots.div_ceil(WORD_BITS);
        let tail = detectors.tail_mask();

        for plan in &self.plans {
            match plan.plan {
                FirePlan::Never => {}
                FirePlan::Always => {
                    for w in 0..words {
                        let mask = if w + 1 == words { tail } else { u64::MAX };
                        apply_mask(&mut detectors, &mut observables, plan, w, mask);
                    }
                }
                FirePlan::Geometric { inv_ln_one_minus_p } => {
                    let mut shot = geometric_skip(rng, inv_ln_one_minus_p);
                    let mut word = usize::MAX;
                    let mut mask = 0u64;
                    while shot < shots {
                        let w = shot / WORD_BITS;
                        if w != word {
                            if mask != 0 {
                                apply_mask(&mut detectors, &mut observables, plan, word, mask);
                            }
                            word = w;
                            mask = 0;
                        }
                        mask |= 1u64 << (shot % WORD_BITS);
                        shot = shot
                            .saturating_add(1)
                            .saturating_add(geometric_skip(rng, inv_ln_one_minus_p));
                    }
                    if mask != 0 {
                        apply_mask(&mut detectors, &mut observables, plan, word, mask);
                    }
                }
                FirePlan::Bernoulli { expansion } => {
                    for w in 0..words {
                        let mut mask = bernoulli_mask(rng, expansion);
                        if w + 1 == words {
                            mask &= tail;
                        }
                        if mask != 0 {
                            apply_mask(&mut detectors, &mut observables, plan, w, mask);
                        }
                    }
                }
            }
        }
        BatchShots { detectors, observables }
    }
}

/// XORs one fire mask into every signature row of the mechanism.
#[inline]
fn apply_mask(
    detectors: &mut BitMatrix,
    observables: &mut BitMatrix,
    plan: &MechanismPlan,
    word: usize,
    mask: u64,
) {
    for &d in &plan.detectors {
        detectors.xor_row_word(d, word, mask);
    }
    for &o in &plan.observables {
        observables.xor_row_word(o, word, mask);
    }
}

/// Number of non-firing shots before the next fire: `Geometric(p)` via
/// inversion, using a cached `1 / ln(1 - p)`.
#[inline]
fn geometric_skip<R: Rng + ?Sized>(rng: &mut R, inv_ln_one_minus_p: f64) -> usize {
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1], so the log is finite and ≤ 0; the product is ≥ 0.
    // Casting truncates toward zero and saturates on overflow.
    ((1.0 - u).ln() * inv_ln_one_minus_p) as usize
}

/// The first [`BERNOULLI_BITS`] bits of `p`'s binary expansion, bit `k`
/// holding `b_{k+1}` (the coefficient of `2^-(k+1)`).
fn probability_expansion(p: f64) -> u64 {
    let mut expansion = 0u64;
    let mut frac = p;
    for k in 0..BERNOULLI_BITS {
        frac *= 2.0;
        if frac >= 1.0 {
            expansion |= 1u64 << k;
            frac -= 1.0;
        }
    }
    expansion
}

/// Draws a word whose 64 bits are each set independently with probability
/// `p` (given by its binary expansion), from `BERNOULLI_BITS` uniform words.
///
/// Processing the expansion from its least significant retained bit upward,
/// each step replaces every lane with the current expansion bit where a
/// fresh coin flips heads: `P(bit) = ½·b_k + ½·P(rest)`, which telescopes to
/// exactly the truncated expansion of `p`.
#[inline]
fn bernoulli_mask<R: Rng + ?Sized>(rng: &mut R, expansion: u64) -> u64 {
    let mut mask = 0u64;
    for k in (0..BERNOULLI_BITS).rev() {
        let coin = rng.gen::<u64>();
        if expansion >> k & 1 == 1 {
            mask |= coin;
        } else {
            mask &= coin;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mechanism;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn model(p: f64) -> FrameErrorModel {
        FrameErrorModel::new(
            2,
            1,
            vec![Mechanism { probability: p, detectors: vec![0, 1], observables: vec![0] }],
        )
        .unwrap()
    }

    fn firing_rate(p: f64, shots: usize, seed: u64) -> f64 {
        let model = model(p);
        let sampler = BatchSampler::new(&model);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let batch = sampler.sample(shots, &mut rng);
        batch.detectors.count_ones_row(0) as f64 / shots as f64
    }

    #[test]
    fn zero_and_one_probabilities_are_exact() {
        assert_eq!(firing_rate(0.0, 1000, 1), 0.0);
        assert_eq!(firing_rate(1.0, 1000, 1), 1.0);
        // p = 1 with a non-word-aligned batch must not set padding bits.
        let sampler = BatchSampler::new(&model(1.0));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch = sampler.sample(70, &mut rng);
        assert_eq!(batch.detectors.count_ones_row(0), 70);
    }

    #[test]
    fn geometric_path_rate_matches_probability() {
        // p below GEOMETRIC_THRESHOLD exercises the skip sampler.
        let rate = firing_rate(0.01, 200_000, 3);
        assert!((rate - 0.01).abs() < 0.002, "rate {rate} vs p = 0.01");
    }

    #[test]
    fn bernoulli_path_rate_matches_probability() {
        // p above GEOMETRIC_THRESHOLD exercises the expansion masks.
        let rate = firing_rate(0.37, 200_000, 4);
        assert!((rate - 0.37).abs() < 0.01, "rate {rate} vs p = 0.37");
    }

    #[test]
    fn signature_rows_flip_together() {
        let sampler = BatchSampler::new(&model(0.3));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let batch = sampler.sample(500, &mut rng);
        assert_eq!(batch.detectors.row_words(0), batch.detectors.row_words(1));
        assert_eq!(batch.detectors.row_words(0), batch.observables.row_words(0));
    }

    #[test]
    fn deterministic_under_seed() {
        let sampler = BatchSampler::new(&model(0.05));
        let a = sampler.sample(300, &mut ChaCha8Rng::seed_from_u64(9));
        let b = sampler.sample(300, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = sampler.sample(300, &mut ChaCha8Rng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn expansion_reconstructs_probability() {
        for p in [0.3, 0.5, 0.75, 0.999] {
            let e = probability_expansion(p);
            let mut value = 0.0;
            for k in 0..BERNOULLI_BITS {
                if e >> k & 1 == 1 {
                    value += (0.5f64).powi(k as i32 + 1);
                }
            }
            assert!((value - p).abs() < 1e-12, "expansion of {p} reconstructs {value}");
        }
    }

    #[test]
    fn unpacked_shots_are_consistent() {
        let model = FrameErrorModel::new(
            3,
            2,
            vec![
                Mechanism { probability: 0.2, detectors: vec![0, 2], observables: vec![1] },
                Mechanism { probability: 0.4, detectors: vec![1], observables: vec![0] },
            ],
        )
        .unwrap();
        let sampler = BatchSampler::new(&model);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let batch = sampler.sample(130, &mut rng);
        for s in 0..batch.num_shots() {
            let det = batch.shot_detectors(s);
            let obs = batch.shot_observables(s);
            // Mechanism 1 is the only way detector 1 or observable 0 flips.
            assert_eq!(det.get(1), obs.get(0), "shot {s}");
            // Mechanism 0 is the only way detectors 0/2 or observable 1 flip.
            assert_eq!(det.get(0), det.get(2), "shot {s}");
            assert_eq!(det.get(0), obs.get(1), "shot {s}");
        }
    }
}

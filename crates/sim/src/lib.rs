//! Bit-packed batch frame simulation and parallel logical-error estimation.
//!
//! This crate is the workspace's Monte-Carlo engine, replacing the original
//! one-shot-at-a-time sampling loop with a stim-style *frame simulator*:
//!
//! * [`BitMatrix`] — shots packed across the bits of `u64` words: one row
//!   per detector/observable, one bit-column per shot, so one XOR flips a
//!   detector for 64 shots at once.
//! * [`FrameErrorModel`] / [`Mechanism`] — the simulator-facing view of a
//!   detector error model (the circuit layer converts its DEM into this).
//! * [`BatchSampler`] — samples [`BatchShots`] with a *word-level biased
//!   RNG*: geometric skip sampling for rare mechanisms and
//!   binary-expansion Bernoulli masks for common ones, instead of one
//!   `f64` draw per shot per mechanism.
//! * [`BatchDecoder`] — batch decoding interface with a correct default
//!   (unpack each shot) that word-parallel decoders can override.
//! * [`ParallelEstimator`] — streams fixed-size chunks of shots through
//!   sampler + decoder on a pool of worker threads with bounded memory,
//!   sums failure counts (order-independent, so the result is identical
//!   for any thread count) and reports [Wilson confidence
//!   intervals](wilson_interval), optionally early-stopping when the
//!   interval is tight.
//!
//! # Determinism
//!
//! Every entry point is deterministic under a fixed seed: chunk RNGs are
//! derived from the seed and the chunk index, never from thread identity,
//! and failure counts are summed (commutatively), so `estimate` returns
//! bit-identical results on 1 or N threads.
//!
//! # Example
//!
//! ```
//! use asynd_pauli::BitVec;
//! use asynd_sim::{BatchDecoder, FrameErrorModel, Mechanism, ParallelEstimator};
//!
//! // A 1-detector, 1-observable toy model and a decoder that predicts a
//! // flip exactly when the detector fired.
//! let model = FrameErrorModel::new(
//!     1,
//!     1,
//!     vec![Mechanism { probability: 0.2, detectors: vec![0], observables: vec![0] }],
//! )
//! .unwrap();
//!
//! struct Mirror;
//! impl BatchDecoder for Mirror {
//!     fn decode_shot(&self, detectors: &BitVec) -> BitVec {
//!         detectors.clone()
//!     }
//! }
//!
//! let estimate = ParallelEstimator::default().estimate(&model, &Mirror, 1, 10_000, 1);
//! assert_eq!(estimate.any_failures, 0); // the mirror decoder is perfect here
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmatrix;
mod decoder;
mod estimator;
mod model;
mod sampler;

pub use bitmatrix::{BitMatrix, WORD_BITS};
pub use decoder::BatchDecoder;
pub use estimator::{
    mix_seed, wilson_interval, BatchEstimate, EstimatorConfig, ParallelEstimator, PhaseTimings,
};
pub use model::{FrameErrorModel, Mechanism, ModelError};
pub use sampler::{BatchSampler, BatchShots, BERNOULLI_BITS, GEOMETRIC_THRESHOLD};

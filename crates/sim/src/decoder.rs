//! Decoding batches of packed shots.

use asynd_pauli::BitVec;

use crate::{BatchShots, BitMatrix};

/// A decoder that can process a whole packed batch of shots.
///
/// The provided [`decode_batch`](Self::decode_batch) unpacks each shot,
/// calls [`decode_shot`](Self::decode_shot) and re-packs the prediction —
/// correct for every decoder, with only the unpack/re-pack overhead on top
/// of scalar decoding. Decoders whose inner loops vectorise over shots
/// (e.g. a batch BP message pass) should override `decode_batch`.
pub trait BatchDecoder {
    /// Predicts the observable flips of a single shot's detector outcomes.
    ///
    /// The returned vector's length is the model's observable count.
    fn decode_shot(&self, detectors: &BitVec) -> BitVec;

    /// Predicts observable flips for every shot in the batch.
    ///
    /// Returns a `num_observables × num_shots` matrix whose column `s` is
    /// the prediction for shot `s`.
    fn decode_batch(&self, shots: &BatchShots) -> BitMatrix {
        let num_observables = shots.observables.rows();
        let mut predictions = BitMatrix::zeros(num_observables, shots.num_shots());
        for s in 0..shots.num_shots() {
            let prediction = self.decode_shot(&shots.shot_detectors(s));
            debug_assert_eq!(prediction.len(), num_observables, "prediction length mismatch");
            for o in prediction.ones() {
                predictions.set(o, s, true);
            }
        }
        predictions
    }
}

impl<D: BatchDecoder + ?Sized> BatchDecoder for &D {
    fn decode_shot(&self, detectors: &BitVec) -> BitVec {
        (**self).decode_shot(detectors)
    }

    fn decode_batch(&self, shots: &BatchShots) -> BitMatrix {
        (**self).decode_batch(shots)
    }
}

impl<D: BatchDecoder + ?Sized> BatchDecoder for Box<D> {
    fn decode_shot(&self, detectors: &BitVec) -> BitVec {
        (**self).decode_shot(detectors)
    }

    fn decode_batch(&self, shots: &BatchShots) -> BitMatrix {
        (**self).decode_batch(shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchSampler, FrameErrorModel, Mechanism};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Predicts observable 0 flipped exactly when detector 0 fired.
    struct MirrorDecoder;

    impl BatchDecoder for MirrorDecoder {
        fn decode_shot(&self, detectors: &BitVec) -> BitVec {
            BitVec::from_bools([detectors.get(0)])
        }
    }

    #[test]
    fn default_batch_impl_matches_scalar() {
        let model = FrameErrorModel::new(
            1,
            1,
            vec![Mechanism { probability: 0.4, detectors: vec![0], observables: vec![0] }],
        )
        .unwrap();
        let sampler = BatchSampler::new(&model);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let batch = sampler.sample(200, &mut rng);
        let predictions = MirrorDecoder.decode_batch(&batch);
        assert_eq!(predictions.rows(), 1);
        assert_eq!(predictions.cols(), 200);
        for s in 0..200 {
            assert_eq!(predictions.get(0, s), batch.detectors.get(0, s), "shot {s}");
        }
        // This decoder is perfect for this model: predictions equal truth.
        assert_eq!(predictions.row_words(0), batch.observables.row_words(0));
    }
}

//! Property-style tests over whole code families: every constructor must
//! produce commuting stabilizers, correctly paired logicals and the expected
//! parameters, and the small instances must have the claimed distance.

use asynd_codes::{
    bivariate_bicycle_code, concatenated_steane_code, defect_surface_code, generalized_shor_code,
    hamming_7_4_checks, hypergraph_product_code, repetition_checks, ring_checks,
    rotated_surface_code, rotated_surface_code_rect, shor_code, steane_code, toric_code, xzzx_code,
    StabilizerCode,
};
use asynd_pauli::{Pauli, PauliString};
use proptest::prelude::*;

/// All `k`-element subsets of `0..n`.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn recurse(
        start: usize,
        n: usize,
        k: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for q in start..n {
            current.push(q);
            recurse(q + 1, n, k, current, out);
            current.pop();
        }
    }
    recurse(0, n, k, &mut current, &mut out);
    out
}

/// Exhaustively computes the minimum weight of a non-trivial logical
/// operator up to `max_weight`.
///
/// Only feasible for small codes; returns `None` if no logical operator of
/// weight `<= max_weight` exists.
fn min_logical_weight(code: &StabilizerCode, max_weight: usize) -> Option<usize> {
    let n = code.num_qubits();
    let stabs: Vec<PauliString> = code.stabilizers().iter().map(|s| s.to_dense(n)).collect();
    let logicals: Vec<PauliString> =
        code.logical_x().iter().chain(code.logical_z()).map(|l| l.to_dense(n)).collect();
    for weight in 1..=max_weight {
        for support in combinations(n, weight) {
            // Enumerate the 3^weight Pauli assignments on this support.
            for assignment in 0..3usize.pow(weight as u32) {
                let mut value = assignment;
                let entries: Vec<(usize, Pauli)> = support
                    .iter()
                    .map(|&q| {
                        let p = [Pauli::X, Pauli::Y, Pauli::Z][value % 3];
                        value /= 3;
                        (q, p)
                    })
                    .collect();
                let error = PauliString::from_sparse(n, &entries);
                let commutes_with_all = stabs.iter().all(|s| s.commutes_with(&error));
                if commutes_with_all && logicals.iter().any(|l| l.anticommutes_with(&error)) {
                    return Some(weight);
                }
            }
        }
    }
    None
}

#[test]
fn small_code_distances_are_exact() {
    // Exhaustive distance verification for the smallest instances.
    assert_eq!(min_logical_weight(&steane_code(), 3), Some(3));
    assert_eq!(min_logical_weight(&rotated_surface_code(3), 3), Some(3));
    assert_eq!(min_logical_weight(&xzzx_code(3), 3), Some(3));
    assert_eq!(min_logical_weight(&shor_code(), 3), Some(3));
    assert_eq!(min_logical_weight(&toric_code(2), 2), Some(2));
    // None of the distance-3 codes above has a weight-2 logical operator.
    assert_eq!(min_logical_weight(&steane_code(), 2), None);
    assert_eq!(min_logical_weight(&rotated_surface_code(3), 2), None);
    assert_eq!(min_logical_weight(&xzzx_code(3), 2), None);
}

#[test]
fn every_family_instance_validates() {
    let instances: Vec<StabilizerCode> = vec![
        steane_code(),
        concatenated_steane_code(),
        shor_code(),
        generalized_shor_code(5),
        rotated_surface_code(4),
        rotated_surface_code_rect(3, 7),
        defect_surface_code(5),
        toric_code(4),
        xzzx_code(4),
        bivariate_bicycle_code(6, 6, &[(3, 0), (0, 1), (0, 2)], &[(0, 3), (1, 0), (2, 0)], 6)
            .unwrap(),
        hypergraph_product_code(&repetition_checks(4), &ring_checks(3), 3).unwrap(),
        hypergraph_product_code(&hamming_7_4_checks(), &repetition_checks(2), 2).unwrap(),
    ];
    for code in instances {
        code.validate().unwrap_or_else(|e| panic!("{} failed validation: {e}", code.name()));
        // Logical operators must be non-trivial and within the register.
        for l in code.logical_x().iter().chain(code.logical_z()) {
            assert!(!l.is_identity());
            assert!(l.max_qubit().unwrap() < code.num_qubits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Rotated surface codes of arbitrary rectangular shape are valid and
    /// have the expected parameter scaling.
    #[test]
    fn rectangular_surface_codes_scale(rows in 2usize..6, cols in 2usize..6) {
        let code = rotated_surface_code_rect(rows, cols);
        prop_assert_eq!(code.num_qubits(), rows * cols);
        prop_assert_eq!(code.num_logicals(), 1);
        prop_assert_eq!(code.stabilizers().len(), rows * cols - 1);
        prop_assert_eq!(code.distance(), rows.min(cols));
        prop_assert!(code.validate().is_ok());
    }

    /// Generalized Shor codes are valid for every distance.
    #[test]
    fn shor_family_scales(d in 2usize..8) {
        let code = generalized_shor_code(d);
        prop_assert_eq!(code.num_qubits(), d * d);
        prop_assert_eq!(code.num_logicals(), 1);
        prop_assert!(code.validate().is_ok());
    }

    /// Hypergraph products of repetition/ring seed matrices satisfy the CSS
    /// condition and the HGP parameter formula.
    #[test]
    fn hypergraph_products_are_valid(n1 in 2usize..5, n2 in 2usize..5) {
        let h1 = repetition_checks(n1);
        let h2 = ring_checks(n2);
        let code = hypergraph_product_code(&h1, &h2, 2).unwrap();
        prop_assert_eq!(code.num_qubits(), n1 * n2 + (n1 - 1) * n2);
        prop_assert!(code.validate().is_ok());
    }

    /// Toric codes always encode two logical qubits with weight-4 checks.
    #[test]
    fn toric_family_scales(l in 2usize..6) {
        let code = toric_code(l);
        prop_assert_eq!(code.num_logicals(), 2);
        prop_assert!(code.stabilizers().iter().all(|s| s.weight() == 4));
        prop_assert!(code.validate().is_ok());
    }
}

//! Stabilizer / CSS quantum error-correcting code constructions for the
//! AlphaSyndrome reproduction.
//!
//! The crate provides:
//!
//! * [`StabilizerCode`] — the general code object consumed by the scheduler,
//!   circuit builder and decoders: stabilizer generators, paired logical
//!   operators, nominal parameters and an optional planar layout.
//! * [`CssCode`] — a builder that turns a pair of GF(2) parity-check
//!   matrices `(Hx, Hz)` into a validated [`StabilizerCode`] with
//!   automatically extracted, symplectically paired logical operators.
//! * Generators for every code family used in the paper's evaluation
//!   (surface codes, XZZX codes, defect codes, toric codes, Shor-type codes,
//!   Steane and concatenated Steane codes, bivariate-bicycle codes,
//!   hypergraph-product codes) plus a [`catalog`] of named benchmark
//!   instances.
//!
//! # Example
//!
//! ```
//! use asynd_codes::rotated_surface_code;
//!
//! let code = rotated_surface_code(3);
//! assert_eq!(code.num_qubits(), 9);
//! assert_eq!(code.num_logicals(), 1);
//! assert_eq!(code.distance(), 3);
//! code.validate().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bb;
pub mod catalog;
mod code;
mod css;
mod error;
mod hgp;
mod shor;
mod steane;
mod surface;
mod xzzx;

pub use bb::{bb_code_72_12_6, bivariate_bicycle_code};
pub use code::{CodeLayout, StabilizerCode, StabilizerKind};
pub use css::CssCode;
pub use error::CodeError;
pub use hgp::{hamming_7_4_checks, hypergraph_product_code, repetition_checks, ring_checks};
pub use shor::{generalized_shor_code, shor_code};
pub use steane::{concatenated_steane_code, steane_code};
pub use surface::{
    defect_surface_code, rotated_surface_code, rotated_surface_code_rect, toric_code,
};
pub use xzzx::xzzx_code;

//! CSS code construction from a pair of GF(2) parity-check matrices.

use asynd_pauli::{BinMatrix, BitVec, Pauli, SparsePauli};

use crate::{CodeError, StabilizerCode};

/// A CSS (Calderbank-Shor-Steane) code described by two parity-check
/// matrices `Hx` (X-type checks) and `Hz` (Z-type checks) satisfying
/// `Hx · Hzᵀ = 0`.
///
/// [`CssCode::build`] turns the pair into a [`StabilizerCode`]: it verifies
/// the orthogonality condition, extracts a complete set of logical X and Z
/// operators (kernel-modulo-row-space construction) and symplectically pairs
/// them so that `X̄_i` anticommutes exactly with `Z̄_i`.
///
/// # Example
///
/// ```
/// use asynd_pauli::BinMatrix;
/// use asynd_codes::CssCode;
///
/// // The Steane code: Hx = Hz = Hamming(7,4) parity checks.
/// let h = BinMatrix::from_dense(&[
///     &[1, 0, 1, 0, 1, 0, 1],
///     &[0, 1, 1, 0, 0, 1, 1],
///     &[0, 0, 0, 1, 1, 1, 1],
/// ]);
/// let code = CssCode::new(h.clone(), h).build("steane", "color-666", 3).unwrap();
/// assert_eq!(code.num_logicals(), 1);
/// code.validate().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct CssCode {
    hx: BinMatrix,
    hz: BinMatrix,
}

impl CssCode {
    /// Wraps the two parity-check matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different numbers of columns.
    pub fn new(hx: BinMatrix, hz: BinMatrix) -> Self {
        assert_eq!(hx.num_cols(), hz.num_cols(), "Hx and Hz must act on the same number of qubits");
        CssCode { hx, hz }
    }

    /// The X-type parity-check matrix.
    pub fn hx(&self) -> &BinMatrix {
        &self.hx
    }

    /// The Z-type parity-check matrix.
    pub fn hz(&self) -> &BinMatrix {
        &self.hz
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.hx.num_cols()
    }

    /// Number of logical qubits `k = n - rank(Hx) - rank(Hz)`.
    pub fn num_logicals(&self) -> usize {
        self.num_qubits() - self.hx.rank() - self.hz.rank()
    }

    /// Checks the CSS orthogonality condition `Hx Hzᵀ = 0`.
    pub fn is_orthogonal(&self) -> bool {
        let prod = self.hx.mul(&self.hz.transpose());
        (0..prod.num_rows()).all(|i| !prod.row(i).any())
    }

    /// Computes paired logical X and Z operator representatives.
    ///
    /// Logical X operators span `ker(Hz) / rowspace(Hx)` and logical Z
    /// operators span `ker(Hx) / rowspace(Hz)`; the X representatives are
    /// then re-mixed so that `X̄_i · Z̄_jᵀ = δ_{ij}`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CssOrthogonalityViolated`] if `Hx Hzᵀ ≠ 0`.
    pub fn logical_operators(&self) -> Result<(Vec<BitVec>, Vec<BitVec>), CodeError> {
        if !self.is_orthogonal() {
            return Err(CodeError::CssOrthogonalityViolated);
        }
        let lx = quotient_basis(&self.hz, &self.hx);
        let lz = quotient_basis(&self.hx, &self.hz);
        if lx.len() != lz.len() {
            return Err(CodeError::WrongLogicalCount { expected: lx.len(), found: lz.len() });
        }
        let k = lx.len();
        if k == 0 {
            return Ok((lx, lz));
        }
        // Pair: build M with M[i][j] = <lx_i, lz_j>; replace Lx by M^{-1} Lx.
        let mut m = BinMatrix::zeros(k, k);
        for (i, x) in lx.iter().enumerate() {
            for (j, z) in lz.iter().enumerate() {
                if x.dot(z) {
                    m.set(i, j, true);
                }
            }
        }
        let m_inv =
            m.inverse().map_err(|_| CodeError::BadLogicalPairing { x_index: 0, z_index: 0 })?;
        let n = self.num_qubits();
        let mut paired_x = Vec::with_capacity(k);
        for i in 0..k {
            let mut acc = BitVec::zeros(n);
            for (j, row) in lx.iter().enumerate() {
                if m_inv.get(i, j) {
                    acc.xor_with(row);
                }
            }
            paired_x.push(acc);
        }
        Ok((paired_x, lz))
    }

    /// Builds a full [`StabilizerCode`], with X-type generators listed before
    /// Z-type generators.
    ///
    /// The `distance` argument is recorded as the nominal distance (this
    /// constructor does not search for minimum-weight logicals).
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::CssOrthogonalityViolated`] if `Hx Hzᵀ ≠ 0` or a
    /// pairing error if the logical extraction fails.
    pub fn build(
        &self,
        name: impl Into<String>,
        family: impl Into<String>,
        distance: usize,
    ) -> Result<StabilizerCode, CodeError> {
        let (lx, lz) = self.logical_operators()?;
        let n = self.num_qubits();
        let mut stabilizers = Vec::new();
        for row in self.hx.rows() {
            stabilizers.push(SparsePauli::uniform(&row.ones().collect::<Vec<_>>(), Pauli::X));
        }
        for row in self.hz.rows() {
            stabilizers.push(SparsePauli::uniform(&row.ones().collect::<Vec<_>>(), Pauli::Z));
        }
        let logical_x: Vec<SparsePauli> = lx
            .iter()
            .map(|v| SparsePauli::uniform(&v.ones().collect::<Vec<_>>(), Pauli::X))
            .collect();
        let logical_z: Vec<SparsePauli> = lz
            .iter()
            .map(|v| SparsePauli::uniform(&v.ones().collect::<Vec<_>>(), Pauli::Z))
            .collect();
        let code =
            StabilizerCode::new(name, family, n, distance, stabilizers, logical_x, logical_z);
        Ok(code)
    }
}

/// Basis of `ker(annihilator) / rowspace(quotient)`.
///
/// Used with (annihilator=Hz, quotient=Hx) to obtain logical X operators and
/// with the roles swapped for logical Z operators.
fn quotient_basis(annihilator: &BinMatrix, quotient: &BinMatrix) -> Vec<BitVec> {
    let kernel = annihilator.kernel_basis();
    let mut reducer = quotient.clone();
    let mut basis = Vec::new();
    for v in kernel {
        let reduced = reducer.reduce_vector(&v);
        if reduced.any() {
            basis.push(reduced.clone());
            reducer.push_row(reduced);
        }
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hamming() -> BinMatrix {
        BinMatrix::from_dense(&[
            &[1, 0, 1, 0, 1, 0, 1],
            &[0, 1, 1, 0, 0, 1, 1],
            &[0, 0, 0, 1, 1, 1, 1],
        ])
    }

    #[test]
    fn steane_from_css() {
        let css = CssCode::new(hamming(), hamming());
        assert!(css.is_orthogonal());
        assert_eq!(css.num_logicals(), 1);
        let code = css.build("steane", "color", 3).unwrap();
        code.validate().unwrap();
        assert_eq!(code.num_logicals(), 1);
        assert!(code.is_css());
    }

    #[test]
    fn toric_like_small_code() {
        // Two-qubit "code" with a single Z check: 1 logical qubit.
        let hz = BinMatrix::from_dense(&[&[1, 1]]);
        let hx = BinMatrix::zeros(0, 2);
        let css = CssCode::new(hx, hz);
        let code = css.build("zz", "toy", 1).unwrap();
        code.validate().unwrap();
        assert_eq!(code.num_logicals(), 1);
    }

    #[test]
    fn orthogonality_violation_detected() {
        let hx = BinMatrix::from_dense(&[&[1, 1, 0]]);
        let hz = BinMatrix::from_dense(&[&[1, 0, 0]]);
        let css = CssCode::new(hx, hz);
        assert!(!css.is_orthogonal());
        assert_eq!(css.build("bad", "bad", 1).unwrap_err(), CodeError::CssOrthogonalityViolated);
    }

    #[test]
    fn multi_logical_pairing() {
        // Hx = Hz = single row of weight 4 on 4 qubits → k = 4 - 2 = 2.
        let h = BinMatrix::from_dense(&[&[1, 1, 1, 1]]);
        let css = CssCode::new(h.clone(), h);
        let code = css.build("422", "toy", 2).unwrap();
        code.validate().unwrap();
        assert_eq!(code.num_logicals(), 2);
    }
}

//! Hypergraph-product (HGP) codes and the small classical seed codes used to
//! build them.
//!
//! HGP codes provide the multi-logical-qubit LDPC instances that substitute
//! for the paper's hyperbolic surface / hyperbolic colour codes (see
//! DESIGN.md §3).

use asynd_pauli::BinMatrix;

use crate::{CodeError, CssCode, StabilizerCode};

/// Parity-check matrix of the classical length-`n` repetition code
/// (`n-1` chain checks, distance `n`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn repetition_checks(n: usize) -> BinMatrix {
    assert!(n >= 2, "repetition code needs n >= 2");
    let rows: Vec<Vec<usize>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
    BinMatrix::from_row_supports(n, &rows)
}

/// Parity-check matrix of the classical length-`n` ring (cyclic repetition)
/// code: `n` checks of weight 2 with one redundancy.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ring_checks(n: usize) -> BinMatrix {
    assert!(n >= 2, "ring code needs n >= 2");
    let rows: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    BinMatrix::from_row_supports(n, &rows)
}

/// Parity-check matrix of the classical Hamming `[7, 4, 3]` code.
pub fn hamming_7_4_checks() -> BinMatrix {
    BinMatrix::from_row_supports(7, &[vec![0, 2, 4, 6], vec![1, 2, 5, 6], vec![3, 4, 5, 6]])
}

/// The hypergraph product of two classical codes with parity-check matrices
/// `h1` (`r1 x n1`) and `h2` (`r2 x n2`).
///
/// The resulting CSS code has `n = n1 n2 + r1 r2` qubits,
/// `Hx = [h1 ⊗ I_{n2} | I_{r1} ⊗ h2ᵀ]` and
/// `Hz = [I_{n1} ⊗ h2 | h1ᵀ ⊗ I_{r2}]`, and
/// `k = k1 k2 + k1ᵀ k2ᵀ` logical qubits, where `kᵀ` counts the redundancies
/// of the classical checks.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParameter`] if either matrix is empty.
///
/// # Example
///
/// ```
/// use asynd_codes::{hypergraph_product_code, repetition_checks};
/// // HGP of two length-3 repetition codes = the distance-3 planar surface code.
/// let code = hypergraph_product_code(&repetition_checks(3), &repetition_checks(3), 3).unwrap();
/// assert_eq!(code.num_qubits(), 13);
/// assert_eq!(code.num_logicals(), 1);
/// ```
pub fn hypergraph_product_code(
    h1: &BinMatrix,
    h2: &BinMatrix,
    distance: usize,
) -> Result<StabilizerCode, CodeError> {
    if h1.num_cols() == 0 || h2.num_cols() == 0 || h1.num_rows() == 0 || h2.num_rows() == 0 {
        return Err(CodeError::InvalidParameter {
            reason: "hypergraph product needs non-empty check matrices".into(),
        });
    }
    let (r1, n1) = (h1.num_rows(), h1.num_cols());
    let (r2, n2) = (h2.num_rows(), h2.num_cols());
    let n = n1 * n2 + r1 * r2;

    // Left block indices: (i, j) with i < n1, j < n2 → i*n2 + j.
    // Right block indices: (a, b) with a < r1, b < r2 → n1*n2 + a*r2 + b.
    let left = |i: usize, j: usize| i * n2 + j;
    let right = |a: usize, b: usize| n1 * n2 + a * r2 + b;

    // Hx rows: indexed by (a, j) with a < r1, j < n2:
    //   h1[a, i] on left(i, j)  and  h2[b, j] on right(a, b).
    let mut x_rows = Vec::with_capacity(r1 * n2);
    for a in 0..r1 {
        for j in 0..n2 {
            let mut row = Vec::new();
            for i in 0..n1 {
                if h1.get(a, i) {
                    row.push(left(i, j));
                }
            }
            for b in 0..r2 {
                if h2.get(b, j) {
                    row.push(right(a, b));
                }
            }
            x_rows.push(row);
        }
    }
    // Hz rows: indexed by (i, b) with i < n1, b < r2:
    //   h2[b, j] on left(i, j)  and  h1[a, i] on right(a, b).
    let mut z_rows = Vec::with_capacity(n1 * r2);
    for i in 0..n1 {
        for b in 0..r2 {
            let mut row = Vec::new();
            for j in 0..n2 {
                if h2.get(b, j) {
                    row.push(left(i, j));
                }
            }
            for a in 0..r1 {
                if h1.get(a, i) {
                    row.push(right(a, b));
                }
            }
            z_rows.push(row);
        }
    }
    let hx = BinMatrix::from_row_supports(n, &x_rows);
    let hz = BinMatrix::from_row_supports(n, &z_rows);
    CssCode::new(hx, hz).build(
        format!("hypergraph product ({r1}x{n1})x({r2}x{n2})"),
        "hypergraph-product",
        distance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_and_ring_checks() {
        assert_eq!(repetition_checks(5).num_rows(), 4);
        assert_eq!(repetition_checks(5).rank(), 4);
        assert_eq!(ring_checks(5).num_rows(), 5);
        assert_eq!(ring_checks(5).rank(), 4);
    }

    #[test]
    fn hgp_of_repetition_codes_is_planar_surface_code() {
        let code =
            hypergraph_product_code(&repetition_checks(3), &repetition_checks(3), 3).unwrap();
        assert_eq!(code.num_qubits(), 13);
        assert_eq!(code.num_logicals(), 1);
        code.validate().unwrap();
    }

    #[test]
    fn hgp_of_ring_codes_is_toric_like() {
        let code = hypergraph_product_code(&ring_checks(3), &ring_checks(3), 3).unwrap();
        assert_eq!(code.num_qubits(), 18);
        assert_eq!(code.num_logicals(), 2);
        code.validate().unwrap();
    }

    #[test]
    fn hgp_of_hamming_codes_has_many_logicals() {
        let code =
            hypergraph_product_code(&hamming_7_4_checks(), &hamming_7_4_checks(), 3).unwrap();
        assert_eq!(code.num_qubits(), 58);
        assert_eq!(code.num_logicals(), 16);
        code.validate().unwrap();
    }

    #[test]
    fn hgp_rejects_empty_input() {
        let empty = BinMatrix::zeros(0, 0);
        assert!(hypergraph_product_code(&empty, &repetition_checks(3), 1).is_err());
    }
}

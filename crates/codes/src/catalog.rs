//! Named catalog of the benchmark code instances used by the paper's
//! evaluation (Tables 2–4, Figures 12–15), including the documented
//! substitutions of DESIGN.md §3.

use serde::{Deserialize, Serialize};

use crate::{
    bb_code_72_12_6, concatenated_steane_code, defect_surface_code, generalized_shor_code,
    hamming_7_4_checks, hypergraph_product_code, repetition_checks, ring_checks,
    rotated_surface_code, rotated_surface_code_rect, steane_code, toric_code, xzzx_code,
    StabilizerCode,
};

/// The decoder the paper pairs with a benchmark instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecommendedDecoder {
    /// Minimum-weight perfect matching.
    Mwpm,
    /// Belief propagation + ordered-statistics decoding.
    BpOsd,
    /// Hypergraph union-find.
    UnionFind,
}

impl RecommendedDecoder {
    /// Human-readable decoder name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            RecommendedDecoder::Mwpm => "MWPM",
            RecommendedDecoder::BpOsd => "BP-OSD",
            RecommendedDecoder::UnionFind => "Unionfind",
        }
    }
}

/// One benchmark instance: the code, the decoder the paper uses for it and
/// provenance information about substitutions.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The row label used in the paper (family + parameters).
    pub paper_label: String,
    /// The code instance actually constructed.
    pub code: StabilizerCode,
    /// The decoder used for this row in the paper.
    pub decoder: RecommendedDecoder,
    /// Whether this entry substitutes a code the paper used but that cannot
    /// be reconstructed exactly (see DESIGN.md §3).
    pub substituted: bool,
}

impl CatalogEntry {
    fn exact(
        paper_label: impl Into<String>,
        code: StabilizerCode,
        decoder: RecommendedDecoder,
    ) -> Self {
        CatalogEntry { paper_label: paper_label.into(), code, decoder, substituted: false }
    }

    fn substituted(
        paper_label: impl Into<String>,
        code: StabilizerCode,
        decoder: RecommendedDecoder,
    ) -> Self {
        CatalogEntry { paper_label: paper_label.into(), code, decoder, substituted: true }
    }

    /// Label combining the paper row and the constructed code, flagging
    /// substitutions.
    pub fn display_label(&self) -> String {
        if self.substituted {
            format!("{} (substituted by {})", self.paper_label, self.code.parameters())
        } else {
            self.paper_label.clone()
        }
    }
}

/// The "Hexagonal Color Code" scaling family of Table 2.
///
/// Distance 3 is the exact Steane code (which *is* the distance-3 colour
/// code); larger distances are substituted by the generalized Shor family
/// (`k = 1` CSS codes of matching odd distance), per DESIGN.md §3.
pub fn hexagonal_color_family(decoder: RecommendedDecoder) -> Vec<CatalogEntry> {
    vec![
        CatalogEntry::exact("Hexagonal Color Code [[7,1,3]]", steane_code(), decoder),
        CatalogEntry::substituted(
            "Hexagonal Color Code [[19,1,5]]",
            generalized_shor_code(5),
            decoder,
        ),
        CatalogEntry::substituted(
            "Hexagonal Color Code [[37,1,7]]",
            generalized_shor_code(7),
            decoder,
        ),
        CatalogEntry::substituted(
            "Hexagonal Color Code [[61,1,9]]",
            generalized_shor_code(9),
            decoder,
        ),
    ]
}

/// The "Square-Octagonal Color Code" scaling family of Table 2.
///
/// Distance 3 is the exact Steane code; larger distances are substituted by
/// the XZZX code family (non-CSS, exercising the mixed-stabilizer paths) and
/// the concatenated Steane code at distance 9, per DESIGN.md §3.
pub fn square_octagonal_color_family(decoder: RecommendedDecoder) -> Vec<CatalogEntry> {
    vec![
        CatalogEntry::exact("Square-Octagonal Color Code [[7,1,3]]", steane_code(), decoder),
        CatalogEntry::substituted("Square-Octagonal Color Code [[17,1,5]]", xzzx_code(5), decoder),
        CatalogEntry::substituted("Square-Octagonal Color Code [[31,1,7]]", xzzx_code(7), decoder),
        CatalogEntry::substituted(
            "Square-Octagonal Color Code [[49,1,9]]",
            concatenated_steane_code(),
            decoder,
        ),
    ]
}

/// The "Hyperbolic Color Code" family of Table 2 (multi-logical-qubit LDPC
/// codes decoded with union-find), substituted by hypergraph-product codes
/// of comparable size and rate.
pub fn hyperbolic_color_family() -> Vec<CatalogEntry> {
    let hgp_small = hypergraph_product_code(&hamming_7_4_checks(), &repetition_checks(3), 3)
        .expect("valid HGP parameters");
    let hgp_ring = hypergraph_product_code(&ring_checks(4), &hamming_7_4_checks(), 3)
        .expect("valid HGP parameters");
    let hgp_large = hypergraph_product_code(&hamming_7_4_checks(), &hamming_7_4_checks(), 3)
        .expect("valid HGP parameters");
    vec![
        CatalogEntry::substituted(
            "Hyperbolic Color Code [[24,8,4]]",
            hgp_small,
            RecommendedDecoder::UnionFind,
        ),
        CatalogEntry::substituted(
            "Hyperbolic Color Code [[32,12,4]]",
            hgp_ring,
            RecommendedDecoder::UnionFind,
        ),
        CatalogEntry::substituted(
            "Hyperbolic Color Code [[40,16,4]]",
            hgp_large,
            RecommendedDecoder::UnionFind,
        ),
    ]
}

/// The "Hyperbolic Surface Code" family of Table 2 (matchable multi-logical
/// codes decoded with MWPM), substituted by toric codes.
pub fn hyperbolic_surface_family() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry::substituted(
            "Hyperbolic Surface Code [[30,8,3]]",
            toric_code(3),
            RecommendedDecoder::Mwpm,
        ),
        CatalogEntry::substituted(
            "Hyperbolic Surface Code [[36,8,4]]",
            toric_code(4),
            RecommendedDecoder::Mwpm,
        ),
        CatalogEntry::substituted(
            "Hyperbolic Surface Code [[60,8,4]]",
            toric_code(5),
            RecommendedDecoder::Mwpm,
        ),
    ]
}

/// The "Defect Surface Code" family of Table 2.
pub fn defect_surface_family() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry::substituted(
            "Defect Surface Code [[25,2,5]]",
            defect_surface_code(5),
            RecommendedDecoder::Mwpm,
        ),
        CatalogEntry::substituted(
            "Defect Surface Code [[41,2,7]]",
            defect_surface_code(7),
            RecommendedDecoder::Mwpm,
        ),
    ]
}

/// All rows of Table 2 in paper order.
pub fn table2_entries() -> Vec<CatalogEntry> {
    let mut entries = Vec::new();
    for decoder in [RecommendedDecoder::BpOsd, RecommendedDecoder::UnionFind] {
        entries.extend(hexagonal_color_family(decoder));
    }
    for decoder in [RecommendedDecoder::BpOsd, RecommendedDecoder::UnionFind] {
        entries.extend(square_octagonal_color_family(decoder));
    }
    entries.extend(hyperbolic_color_family());
    entries.extend(hyperbolic_surface_family());
    entries.extend(defect_surface_family());
    entries
}

/// The rotated surface codes of Figure 12 (square distances 3, 5, 7, 9 plus
/// the rectangular 5x9 instance), all decoded with MWPM.
pub fn figure12_surface_codes() -> Vec<CatalogEntry> {
    let mut entries: Vec<CatalogEntry> = [3usize, 5, 7, 9]
        .iter()
        .map(|&d| {
            CatalogEntry::exact(
                format!("Rotated Surface Code [[{0}x{0},1,{0}]]", d),
                rotated_surface_code(d),
                RecommendedDecoder::Mwpm,
            )
        })
        .collect();
    entries.push(CatalogEntry::exact(
        "Rotated Surface Code [[5x9,1,5]]",
        rotated_surface_code_rect(5, 9),
        RecommendedDecoder::Mwpm,
    ));
    entries
}

/// The BB code instance of Figure 13, evaluated with both BP-OSD and
/// union-find.
pub fn figure13_bb_codes() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry::exact(
            "Bivariate Bicycle [[72,12,6]]",
            bb_code_72_12_6(),
            RecommendedDecoder::BpOsd,
        ),
        CatalogEntry::exact(
            "Bivariate Bicycle [[72,12,6]]",
            bb_code_72_12_6(),
            RecommendedDecoder::UnionFind,
        ),
    ]
}

/// The eight colour-code instances of the cross-decoder study (Table 4).
pub fn table4_entries() -> Vec<CatalogEntry> {
    let mut entries = hexagonal_color_family(RecommendedDecoder::BpOsd);
    entries.extend(square_octagonal_color_family(RecommendedDecoder::BpOsd));
    entries
}

/// The XZZX code scaling family (distances 3, 5, 7) as a first-class
/// catalog family.
///
/// Previously the XZZX codes only appeared as substitutes inside the
/// colour-code rows; registering them under their own name lets sweep
/// drivers (the portfolio racer in particular) address the family
/// directly. Decoded with hypergraph union-find, which handles their
/// mixed (non-CSS) stabilizers.
pub fn xzzx_family() -> Vec<CatalogEntry> {
    [3usize, 5, 7]
        .iter()
        .map(|&d| {
            let code = xzzx_code(d);
            let label = format!("XZZX Code {}", code.parameters());
            CatalogEntry::exact(label, code, RecommendedDecoder::UnionFind)
        })
        .collect()
}

/// The hypergraph-product code family as a first-class catalog family
/// (same three instances the hyperbolic-colour rows substitute with, but
/// under their own name and without the substitution flag).
pub fn hgp_family() -> Vec<CatalogEntry> {
    let instances = [
        hypergraph_product_code(&hamming_7_4_checks(), &repetition_checks(3), 3)
            .expect("valid HGP parameters"),
        hypergraph_product_code(&ring_checks(4), &hamming_7_4_checks(), 3)
            .expect("valid HGP parameters"),
        hypergraph_product_code(&hamming_7_4_checks(), &hamming_7_4_checks(), 3)
            .expect("valid HGP parameters"),
    ];
    instances
        .into_iter()
        .map(|code| {
            let label = format!("Hypergraph Product {}", code.parameters());
            CatalogEntry::exact(label, code, RecommendedDecoder::UnionFind)
        })
        .collect()
}

/// One named family of the catalog registry: the registry name sweep
/// drivers address it by, plus its resolved entries.
#[derive(Debug, Clone)]
pub struct CatalogFamily {
    /// The registry name ([`family_names`] / [`family_by_name`]).
    pub name: &'static str,
    /// The family's benchmark instances, in scaling order.
    pub entries: Vec<CatalogEntry>,
}

impl CatalogFamily {
    /// Entries whose codes have at most `max_qubits` data qubits (the
    /// filter sweep smoke modes use to stay within a time budget).
    pub fn entries_within(&self, max_qubits: usize) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.iter().filter(move |entry| entry.code.num_qubits() <= max_qubits)
    }
}

/// Every family of the registry with its entries resolved, in registry
/// order — the iteration API catalog-wide sweeps fan out over.
///
/// # Example
///
/// ```
/// let families = asynd_codes::catalog::families();
/// assert!(families.len() >= 6, "the sweep surface covers many families");
/// for family in &families {
///     assert!(!family.entries.is_empty());
/// }
/// ```
pub fn families() -> Vec<CatalogFamily> {
    family_names()
        .into_iter()
        .map(|name| CatalogFamily {
            name,
            entries: family_by_name(name).expect("every registered name resolves"),
        })
        .collect()
}

/// Every named code family of the catalog, in registry order.
///
/// Sweep drivers iterate this list (or resolve a single family with
/// [`family_by_name`]) so a new family registered here is automatically
/// picked up by every by-name workload.
pub fn family_names() -> Vec<&'static str> {
    vec![
        "hexagonal-color",
        "square-octagonal-color",
        "hyperbolic-color",
        "hyperbolic-surface",
        "defect-surface",
        "rotated-surface",
        "bb",
        "xzzx",
        "hgp",
    ]
}

/// Resolves a catalog family by its registry name (see [`family_names`]).
///
/// Families the paper parameterises by decoder resolve with the decoder
/// the paper's headline tables use (BP-OSD).
pub fn family_by_name(name: &str) -> Option<Vec<CatalogEntry>> {
    match name {
        "hexagonal-color" => Some(hexagonal_color_family(RecommendedDecoder::BpOsd)),
        "square-octagonal-color" => Some(square_octagonal_color_family(RecommendedDecoder::BpOsd)),
        "hyperbolic-color" => Some(hyperbolic_color_family()),
        "hyperbolic-surface" => Some(hyperbolic_surface_family()),
        "defect-surface" => Some(defect_surface_family()),
        "rotated-surface" => Some(figure12_surface_codes()),
        "bb" => Some(figure13_bb_codes()),
        "xzzx" => Some(xzzx_family()),
        "hgp" => Some(hgp_family()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_code_validates() {
        for entry in table2_entries()
            .into_iter()
            .chain(figure12_surface_codes())
            .chain(figure13_bb_codes())
            .chain(table4_entries())
        {
            entry
                .code
                .validate()
                .unwrap_or_else(|e| panic!("{} failed validation: {e}", entry.paper_label));
        }
    }

    #[test]
    fn table2_has_all_paper_sections() {
        let entries = table2_entries();
        assert!(entries.len() >= 20);
        let labels: Vec<&str> = entries.iter().map(|e| e.paper_label.as_str()).collect();
        assert!(labels.iter().any(|l| l.contains("Hexagonal")));
        assert!(labels.iter().any(|l| l.contains("Square-Octagonal")));
        assert!(labels.iter().any(|l| l.contains("Hyperbolic Surface")));
        assert!(labels.iter().any(|l| l.contains("Defect")));
    }

    #[test]
    fn substitution_flags_are_reported() {
        let entry = &hexagonal_color_family(RecommendedDecoder::BpOsd)[1];
        assert!(entry.substituted);
        assert!(entry.display_label().contains("substituted"));
        let exact = &hexagonal_color_family(RecommendedDecoder::BpOsd)[0];
        assert!(!exact.substituted);
        assert_eq!(exact.display_label(), exact.paper_label);
    }

    #[test]
    fn every_family_name_resolves_to_validating_codes() {
        for name in family_names() {
            let entries = family_by_name(name)
                .unwrap_or_else(|| panic!("family {name} is registered but does not resolve"));
            assert!(!entries.is_empty(), "family {name} is empty");
            for entry in entries {
                entry
                    .code
                    .validate()
                    .unwrap_or_else(|e| panic!("{name}/{}: {e}", entry.paper_label));
            }
        }
        assert!(family_by_name("no-such-family").is_none());
    }

    #[test]
    fn xzzx_and_hgp_are_first_class_families() {
        let xzzx = xzzx_family();
        assert_eq!(xzzx.len(), 3);
        assert!(xzzx.iter().all(|e| !e.substituted), "xzzx entries are exact");
        assert!(xzzx.iter().all(|e| e.paper_label.contains("XZZX")));

        let hgp = hgp_family();
        assert_eq!(hgp.len(), 3);
        assert!(hgp.iter().all(|e| !e.substituted), "hgp entries are exact");
        assert!(hgp.iter().all(|e| e.decoder == RecommendedDecoder::UnionFind));

        assert!(family_names().contains(&"xzzx"));
        assert!(family_names().contains(&"hgp"));
    }

    #[test]
    fn families_iteration_matches_the_registry() {
        let families = families();
        assert_eq!(
            families.iter().map(|f| f.name).collect::<Vec<_>>(),
            family_names(),
            "families() preserves registry order"
        );
        for family in &families {
            let by_name = family_by_name(family.name).unwrap();
            assert_eq!(by_name.len(), family.entries.len());
            for (a, b) in family.entries.iter().zip(&by_name) {
                assert_eq!(a.paper_label, b.paper_label);
            }
        }
    }

    #[test]
    fn entries_within_filters_by_qubit_count() {
        let families = families();
        let bb = families.iter().find(|f| f.name == "bb").unwrap();
        assert_eq!(bb.entries_within(71).count(), 0, "the BB code has 72 data qubits");
        assert_eq!(bb.entries_within(72).count(), bb.entries.len());
        let total: usize = families.iter().map(|f| f.entries_within(usize::MAX).count()).sum();
        assert_eq!(total, families.iter().map(|f| f.entries.len()).sum::<usize>());
    }

    #[test]
    fn family_by_name_rejects_unknown_names() {
        for name in ["", "surface", "rotated surface", "xzzx ", " xzzx", "bb-codes"] {
            assert!(family_by_name(name).is_none(), "{name:?} should not resolve");
        }
    }

    #[test]
    fn family_by_name_is_case_sensitive() {
        // Registry names are the canonical protocol tokens; a server must
        // treat case variants as unknown rather than silently aliasing.
        for name in ["XZZX", "Xzzx", "HGP", "Rotated-Surface", "BB"] {
            assert!(family_by_name(name).is_none(), "{name:?} resolved despite case mismatch");
            assert!(
                family_by_name(&name.to_lowercase()).is_some(),
                "lowercase {name:?} is registered"
            );
        }
    }

    #[test]
    fn decoder_labels() {
        assert_eq!(RecommendedDecoder::Mwpm.label(), "MWPM");
        assert_eq!(RecommendedDecoder::BpOsd.label(), "BP-OSD");
        assert_eq!(RecommendedDecoder::UnionFind.label(), "Unionfind");
    }
}

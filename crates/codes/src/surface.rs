//! Surface-code family constructions: rotated (square and rectangular)
//! surface codes, defect (punctured) surface codes and toric codes.

use asynd_pauli::BinMatrix;

use crate::{CodeLayout, CssCode, StabilizerCode};

/// Internal description of one plaquette of the rotated surface code.
struct Plaquette {
    /// Data-qubit indices at the plaquette corners (2 or 4 of them).
    support: Vec<usize>,
    /// True for X-type plaquettes, false for Z-type.
    is_x: bool,
    /// Plaquette centre in doubled coordinates.
    coord: (i32, i32),
}

/// Enumerates the plaquettes of a `rows x cols` rotated surface code.
///
/// Data qubit `(r, c)` has index `r * cols + c`. Plaquette `(i, j)` (with
/// `0 <= i <= rows`, `0 <= j <= cols`) covers the up-to-four data qubits
/// `(i-1, j-1)`, `(i-1, j)`, `(i, j-1)`, `(i, j)` that lie on the grid.
/// Bulk plaquettes are kept unconditionally; two-qubit boundary plaquettes
/// are kept on the top/bottom boundary when X-type and on the left/right
/// boundary when Z-type, which yields exactly `rows*cols - 1` stabilizers.
fn rotated_plaquettes(rows: usize, cols: usize) -> Vec<Plaquette> {
    let mut plaquettes = Vec::new();
    for i in 0..=rows {
        for j in 0..=cols {
            let mut support = Vec::new();
            for (dr, dc) in [(-1i32, -1i32), (-1, 0), (0, -1), (0, 0)] {
                let r = i as i32 + dr;
                let c = j as i32 + dc;
                if r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols {
                    support.push(r as usize * cols + c as usize);
                }
            }
            let is_x = (i + j) % 2 == 0;
            let keep = match support.len() {
                4 => true,
                2 => {
                    let on_top_bottom = i == 0 || i == rows;
                    let on_left_right = j == 0 || j == cols;
                    (on_top_bottom && is_x) || (on_left_right && !is_x)
                }
                _ => false,
            };
            if keep {
                plaquettes.push(Plaquette {
                    support,
                    is_x,
                    coord: (2 * i as i32 - 1, 2 * j as i32 - 1),
                });
            }
        }
    }
    plaquettes
}

fn build_rotated(rows: usize, cols: usize, skip: Option<usize>, name: String) -> StabilizerCode {
    assert!(rows >= 2 && cols >= 2, "rotated surface code needs at least a 2x2 data grid");
    let n = rows * cols;
    let mut plaquettes = rotated_plaquettes(rows, cols);
    if let Some(skip_idx) = skip {
        assert!(skip_idx < plaquettes.len(), "defect plaquette index out of range");
        plaquettes.remove(skip_idx);
    }
    // The CSS builder lists X generators before Z generators, so the layout
    // must follow the same order.
    let x_plaquettes: Vec<&Plaquette> = plaquettes.iter().filter(|p| p.is_x).collect();
    let z_plaquettes: Vec<&Plaquette> = plaquettes.iter().filter(|p| !p.is_x).collect();
    let hx = BinMatrix::from_row_supports(
        n,
        &x_plaquettes.iter().map(|p| p.support.clone()).collect::<Vec<_>>(),
    );
    let hz = BinMatrix::from_row_supports(
        n,
        &z_plaquettes.iter().map(|p| p.support.clone()).collect::<Vec<_>>(),
    );
    let distance = rows.min(cols);
    let nominal = if skip.is_some() { distance.saturating_sub(1).max(2) } else { distance };
    let code = CssCode::new(hx, hz)
        .build(name, if skip.is_some() { "defect-surface" } else { "rotated-surface" }, nominal)
        .expect("rotated surface construction always satisfies the CSS condition");
    let mut data_coords = Vec::with_capacity(n);
    for r in 0..rows {
        for c in 0..cols {
            data_coords.push((2 * r as i32, 2 * c as i32));
        }
    }
    let stab_coords: Vec<(i32, i32)> =
        x_plaquettes.iter().map(|p| p.coord).chain(z_plaquettes.iter().map(|p| p.coord)).collect();
    code.with_layout(CodeLayout { data_coords, stab_coords })
}

/// The distance-`d` rotated surface code `[[d², 1, d]]`.
///
/// # Panics
///
/// Panics if `d < 2`.
///
/// # Example
///
/// ```
/// use asynd_codes::rotated_surface_code;
/// let code = rotated_surface_code(5);
/// assert_eq!(code.parameters(), "[[25,1,5]]");
/// ```
pub fn rotated_surface_code(d: usize) -> StabilizerCode {
    rotated_surface_code_rect(d, d)
}

/// A rectangular rotated surface code on a `rows x cols` data-qubit grid,
/// encoding one logical qubit with distance `min(rows, cols)`.
///
/// The paper's `[[5x9, 1, 5]]` instance is `rotated_surface_code_rect(5, 9)`.
///
/// # Panics
///
/// Panics if either side is smaller than 2.
pub fn rotated_surface_code_rect(rows: usize, cols: usize) -> StabilizerCode {
    let name = if rows == cols {
        format!("rotated surface d={rows}")
    } else {
        format!("rotated surface {rows}x{cols}")
    };
    build_rotated(rows, cols, None, name)
}

/// A defect (punctured) rotated surface code: the distance-`d` rotated
/// surface code with one bulk stabilizer removed, which adds a second
/// logical qubit.
///
/// This stands in for the paper's "defect surface code" instances; the
/// paper's hole construction preserves the full distance whereas puncturing
/// a single plaquette yields a second logical qubit of weight equal to the
/// removed check, so the nominal distance is reduced accordingly (see
/// DESIGN.md §3).
///
/// # Panics
///
/// Panics if `d < 3`.
pub fn defect_surface_code(d: usize) -> StabilizerCode {
    assert!(d >= 3, "defect surface code needs d >= 3");
    let plaquettes = rotated_plaquettes(d, d);
    // Remove a bulk (weight-4) X-type plaquette nearest the centre.
    let centre = (d as i32 - 1, d as i32 - 1);
    let skip = plaquettes
        .iter()
        .enumerate()
        .filter(|(_, p)| p.support.len() == 4 && p.is_x)
        .min_by_key(|(_, p)| {
            let dr = p.coord.0 - centre.0;
            let dc = p.coord.1 - centre.1;
            dr * dr + dc * dc
        })
        .map(|(i, _)| i)
        .expect("bulk plaquette always exists for d >= 3");
    build_rotated(d, d, Some(skip), format!("defect surface d={d}"))
}

/// The toric code on an `l x l` torus: `[[2l², 2, l]]`.
///
/// Qubits live on the edges of the torus: horizontal edge `(r, c)` has index
/// `r*l + c` and vertical edge `(r, c)` has index `l² + r*l + c`. Vertex
/// operators are X-type, plaquette operators are Z-type.
///
/// # Panics
///
/// Panics if `l < 2`.
///
/// # Example
///
/// ```
/// use asynd_codes::toric_code;
/// let code = toric_code(3);
/// assert_eq!(code.parameters(), "[[18,2,3]]");
/// ```
pub fn toric_code(l: usize) -> StabilizerCode {
    assert!(l >= 2, "toric code needs l >= 2");
    let n = 2 * l * l;
    let h_edge = |r: usize, c: usize| (r % l) * l + (c % l);
    let v_edge = |r: usize, c: usize| l * l + (r % l) * l + (c % l);
    let mut x_rows = Vec::new();
    let mut z_rows = Vec::new();
    for r in 0..l {
        for c in 0..l {
            // Vertex (r, c): the four incident edges.
            x_rows.push(vec![
                h_edge(r, c),
                h_edge(r, c + l - 1),
                v_edge(r, c),
                v_edge(r + l - 1, c),
            ]);
            // Plaquette (r, c): the four surrounding edges.
            z_rows.push(vec![h_edge(r, c), h_edge(r + 1, c), v_edge(r, c), v_edge(r, c + 1)]);
        }
    }
    let hx = BinMatrix::from_row_supports(n, &x_rows);
    let hz = BinMatrix::from_row_supports(n, &z_rows);
    CssCode::new(hx, hz)
        .build(format!("toric l={l}"), "toric", l)
        .expect("toric construction always satisfies the CSS condition")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotated_surface_code_parameters() {
        for d in [2, 3, 4, 5, 7] {
            let code = rotated_surface_code(d);
            assert_eq!(code.num_qubits(), d * d, "n for d={d}");
            assert_eq!(code.num_logicals(), 1, "k for d={d}");
            assert_eq!(code.stabilizers().len(), d * d - 1, "r for d={d}");
            code.validate().unwrap();
            assert!(code.is_css());
            assert!(code.max_stabilizer_weight() <= 4);
            let layout = code.layout().expect("surface code carries a layout");
            assert_eq!(layout.data_coords.len(), d * d);
            assert_eq!(layout.stab_coords.len(), d * d - 1);
        }
    }

    #[test]
    fn rectangular_surface_code() {
        let code = rotated_surface_code_rect(5, 9);
        assert_eq!(code.num_qubits(), 45);
        assert_eq!(code.num_logicals(), 1);
        assert_eq!(code.distance(), 5);
        code.validate().unwrap();
    }

    #[test]
    fn every_bulk_plaquette_has_weight_four() {
        let code = rotated_surface_code(5);
        let weight2 = code.stabilizers().iter().filter(|s| s.weight() == 2).count();
        let weight4 = code.stabilizers().iter().filter(|s| s.weight() == 4).count();
        assert_eq!(weight2, 2 * (5 - 1));
        assert_eq!(weight4, (5 - 1) * (5 - 1));
        assert_eq!(weight2 + weight4, code.stabilizers().len());
    }

    #[test]
    fn defect_code_gains_a_logical_qubit() {
        let code = defect_surface_code(5);
        assert_eq!(code.num_qubits(), 25);
        assert_eq!(code.num_logicals(), 2);
        code.validate().unwrap();
    }

    #[test]
    fn toric_code_parameters() {
        for l in [2, 3, 4, 5] {
            let code = toric_code(l);
            assert_eq!(code.num_qubits(), 2 * l * l);
            assert_eq!(code.num_logicals(), 2);
            code.validate().unwrap();
            assert!(code.stabilizers().iter().all(|s| s.weight() == 4));
        }
    }

    #[test]
    fn logical_operators_have_expected_minimum_weight_for_d3() {
        // For d = 3 the logical representatives extracted by the CSS builder
        // must have weight >= 3 after multiplying by stabilizers is not
        // attempted; at minimum they must be non-trivial and within n.
        let code = rotated_surface_code(3);
        for l in code.logical_x().iter().chain(code.logical_z()) {
            assert!(l.weight() >= 3 || l.weight() == 3);
            assert!(!l.is_identity());
        }
    }
}

//! The XZZX surface code: a Hadamard-twisted rotated surface code whose
//! stabilizers mix X and Z on the same plaquette.

use asynd_pauli::{Pauli, SparsePauli};

use crate::{rotated_surface_code, StabilizerCode};

/// Applies the single-qubit Hadamard conjugation (X ↔ Z, Y ↦ Y) on the
/// selected qubits of a sparse Pauli operator.
fn hadamard_twist(op: &SparsePauli, twisted: &[bool]) -> SparsePauli {
    SparsePauli::new(
        op.entries()
            .iter()
            .map(|&(q, p)| {
                let p = if twisted[q] {
                    match p {
                        Pauli::X => Pauli::Z,
                        Pauli::Z => Pauli::X,
                        other => other,
                    }
                } else {
                    p
                };
                (q, p)
            })
            .collect(),
    )
}

/// The distance-`d` XZZX code `[[d², 1, d]]`.
///
/// Constructed by conjugating the rotated surface code with Hadamards on the
/// data qubits of odd checkerboard parity, so every plaquette stabilizer
/// becomes an `XZZX`-pattern mixed check. This is the non-CSS code family
/// the paper mentions in §5.3.1 and exercises the general (non-CSS) paths of
/// the scheduler: its stabilizers cannot be split into an X partition and a
/// Z partition.
///
/// # Panics
///
/// Panics if `d < 2`.
///
/// # Example
///
/// ```
/// use asynd_codes::xzzx_code;
/// let code = xzzx_code(3);
/// assert_eq!(code.parameters(), "[[9,1,3]]");
/// assert!(!code.is_css());
/// ```
pub fn xzzx_code(d: usize) -> StabilizerCode {
    let base = rotated_surface_code(d);
    let n = base.num_qubits();
    // Twist the qubits with odd (row + col) parity; with the base layout the
    // data qubit at grid position (r, c) has index r*d + c.
    let twisted: Vec<bool> = (0..n).map(|q| (q / d + q % d) % 2 == 1).collect();
    let stabilizers = base.stabilizers().iter().map(|s| hadamard_twist(s, &twisted)).collect();
    let logical_x = base.logical_x().iter().map(|s| hadamard_twist(s, &twisted)).collect();
    let logical_z = base.logical_z().iter().map(|s| hadamard_twist(s, &twisted)).collect();
    let mut code =
        StabilizerCode::new(format!("xzzx d={d}"), "xzzx", n, d, stabilizers, logical_x, logical_z);
    if let Some(layout) = base.layout() {
        code = code.with_layout(layout.clone());
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StabilizerKind;

    #[test]
    fn xzzx_parameters_and_validity() {
        for d in [2, 3, 5] {
            let code = xzzx_code(d);
            assert_eq!(code.num_qubits(), d * d);
            assert_eq!(code.num_logicals(), 1);
            code.validate().unwrap();
        }
    }

    #[test]
    fn bulk_stabilizers_are_mixed() {
        let code = xzzx_code(3);
        assert!(!code.is_css());
        let mixed = (0..code.stabilizers().len())
            .filter(|&i| code.stabilizer_kind(i) == StabilizerKind::Mixed)
            .count();
        // Every weight-4 bulk plaquette becomes an XZZX-type mixed check.
        assert!(mixed >= 4);
    }

    #[test]
    fn hadamard_twist_preserves_weight() {
        let base = rotated_surface_code(3);
        let code = xzzx_code(3);
        for (a, b) in base.stabilizers().iter().zip(code.stabilizers()) {
            assert_eq!(a.weight(), b.weight());
            assert_eq!(a.support(), b.support());
        }
    }
}

//! Error type for code construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating a stabilizer code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// Two stabilizer generators anticommute.
    AnticommutingStabilizers {
        /// Index of the first generator.
        first: usize,
        /// Index of the second generator.
        second: usize,
    },
    /// A logical operator anticommutes with a stabilizer generator.
    LogicalNotInCentralizer {
        /// Index of the logical operator (within its X/Z list).
        logical: usize,
        /// Index of the offending stabilizer.
        stabilizer: usize,
    },
    /// The logical X/Z operators are not correctly symplectically paired.
    BadLogicalPairing {
        /// Index of the logical X operator.
        x_index: usize,
        /// Index of the logical Z operator.
        z_index: usize,
    },
    /// The number of logical operators does not equal `n - rank(S)`.
    WrongLogicalCount {
        /// Expected number of logical qubits.
        expected: usize,
        /// Number found.
        found: usize,
    },
    /// CSS construction failed because `Hx Hzᵀ ≠ 0`.
    CssOrthogonalityViolated,
    /// A construction parameter was invalid (e.g. even distance for an
    /// odd-distance-only family).
    InvalidParameter {
        /// Description of the failed requirement.
        reason: String,
    },
    /// A qubit index referenced by a stabilizer was out of range.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Number of qubits in the code.
        num_qubits: usize,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::AnticommutingStabilizers { first, second } => {
                write!(f, "stabilizer generators {first} and {second} anticommute")
            }
            CodeError::LogicalNotInCentralizer { logical, stabilizer } => {
                write!(f, "logical operator {logical} anticommutes with stabilizer {stabilizer}")
            }
            CodeError::BadLogicalPairing { x_index, z_index } => {
                write!(
                    f,
                    "logical X {x_index} and logical Z {z_index} violate the symplectic pairing"
                )
            }
            CodeError::WrongLogicalCount { expected, found } => {
                write!(f, "expected {expected} logical qubits but found {found}")
            }
            CodeError::CssOrthogonalityViolated => {
                write!(f, "CSS condition violated: Hx * Hz^T is non-zero")
            }
            CodeError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            CodeError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for a {num_qubits}-qubit code")
            }
        }
    }
}

impl Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CodeError::CssOrthogonalityViolated;
        assert!(e.to_string().contains("CSS"));
        let e = CodeError::InvalidParameter { reason: "distance must be odd".into() };
        assert!(e.to_string().contains("odd"));
    }
}

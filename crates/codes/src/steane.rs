//! The Steane `[[7,1,3]]` colour code and its self-concatenation
//! `[[49,1,9]]`.

use asynd_pauli::BinMatrix;

use crate::{CssCode, StabilizerCode};

/// Parity-check matrix of the classical Hamming `[7,4,3]` code.
fn hamming_rows() -> Vec<Vec<usize>> {
    vec![vec![0, 2, 4, 6], vec![1, 2, 5, 6], vec![3, 4, 5, 6]]
}

/// Minimum-weight logical representative of the Steane code on one block:
/// `{0, 1, 2}` commutes with every Hamming check and is not a check itself.
const STEANE_LOGICAL: [usize; 3] = [0, 1, 2];

/// The Steane code `[[7, 1, 3]]` — the distance-3 triangular colour code
/// (both the hexagonal 6.6.6 and square-octagonal 4.8.8 families coincide
/// with it at distance 3).
///
/// # Example
///
/// ```
/// use asynd_codes::steane_code;
/// let code = steane_code();
/// assert_eq!(code.parameters(), "[[7,1,3]]");
/// assert!(code.is_css());
/// ```
pub fn steane_code() -> StabilizerCode {
    let h = BinMatrix::from_row_supports(7, &hamming_rows());
    CssCode::new(h.clone(), h)
        .build("steane", "color-666", 3)
        .expect("Steane construction always satisfies the CSS condition")
}

/// The Steane code concatenated with itself: `[[49, 1, 9]]`.
///
/// Seven inner Steane blocks carry the 42 inner stabilizers; the outer
/// Steane code's checks act through weight-3 logical representatives of the
/// inner blocks, giving six additional weight-12 stabilizers. Used as the
/// largest instance of the colour-code-substitute family (DESIGN.md §3).
///
/// # Example
///
/// ```
/// use asynd_codes::concatenated_steane_code;
/// let code = concatenated_steane_code();
/// assert_eq!(code.parameters(), "[[49,1,9]]");
/// ```
pub fn concatenated_steane_code() -> StabilizerCode {
    let n = 49;
    let mut x_rows: Vec<Vec<usize>> = Vec::new();
    let mut z_rows: Vec<Vec<usize>> = Vec::new();
    // Inner stabilizers: one copy of the Steane checks per block.
    for block in 0..7usize {
        for row in hamming_rows() {
            let shifted: Vec<usize> = row.iter().map(|&q| block * 7 + q).collect();
            x_rows.push(shifted.clone());
            z_rows.push(shifted);
        }
    }
    // Outer stabilizers: the Hamming checks acting via the inner logical
    // representatives.
    for row in hamming_rows() {
        let support: Vec<usize> = row
            .iter()
            .flat_map(|&block| STEANE_LOGICAL.iter().map(move |&q| block * 7 + q))
            .collect();
        x_rows.push(support.clone());
        z_rows.push(support);
    }
    let hx = BinMatrix::from_row_supports(n, &x_rows);
    let hz = BinMatrix::from_row_supports(n, &z_rows);
    CssCode::new(hx, hz)
        .build("steane^2", "color-666-concatenated", 9)
        .expect("concatenated Steane construction always satisfies the CSS condition")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steane_parameters() {
        let code = steane_code();
        assert_eq!(code.num_qubits(), 7);
        assert_eq!(code.num_logicals(), 1);
        assert_eq!(code.stabilizers().len(), 6);
        assert!(code.stabilizers().iter().all(|s| s.weight() == 4));
        code.validate().unwrap();
    }

    #[test]
    fn concatenated_steane_parameters() {
        let code = concatenated_steane_code();
        assert_eq!(code.num_qubits(), 49);
        assert_eq!(code.num_logicals(), 1);
        assert_eq!(code.stabilizers().len(), 48);
        assert_eq!(code.max_stabilizer_weight(), 12);
        code.validate().unwrap();
    }

    #[test]
    fn steane_logical_weight_is_three() {
        let code = steane_code();
        assert!(code.logical_x()[0].weight() >= 3);
        assert!(code.logical_z()[0].weight() >= 3);
    }
}

//! The general stabilizer-code object used throughout the workspace.

use std::fmt;

use asynd_pauli::{BinMatrix, BitVec, Pauli, SparsePauli};
use serde::{Deserialize, Serialize};

use crate::CodeError;

/// Whether a stabilizer generator is an X-type check, a Z-type check or a
/// mixed-type check (e.g. the `XZZX` code's generators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StabilizerKind {
    /// All non-identity sites are Pauli X.
    XType,
    /// All non-identity sites are Pauli Z.
    ZType,
    /// The generator mixes X, Y and Z sites.
    Mixed,
}

/// Optional planar layout information attached to a code.
///
/// Geometric layouts are used by the industry hand-crafted schedules
/// (Google's zig-zag ordering needs to know which corner of a plaquette each
/// data qubit occupies) and by non-uniform noise models that vary with
/// position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CodeLayout {
    /// One `(row, col)` coordinate per data qubit, in doubled coordinates so
    /// that stabilizer (plaquette) centres also have integer coordinates.
    pub data_coords: Vec<(i32, i32)>,
    /// One `(row, col)` coordinate per stabilizer generator.
    pub stab_coords: Vec<(i32, i32)>,
}

/// A stabilizer quantum error-correcting code.
///
/// The struct stores the generating set of the stabilizer group, one
/// symplectically paired set of logical X/Z representatives, the nominal
/// `[[n, k, d]]` parameters and optional layout metadata.
///
/// Instances are normally produced by the constructors in this crate
/// ([`crate::rotated_surface_code`], [`crate::bb_code_72_12_6`], …) or by
/// [`crate::CssCode`]; [`StabilizerCode::new`] is available for custom codes.
///
/// # Example
///
/// ```
/// use asynd_codes::steane_code;
///
/// let code = steane_code();
/// assert_eq!((code.num_qubits(), code.num_logicals(), code.distance()), (7, 1, 3));
/// assert_eq!(code.stabilizers().len(), 6);
/// code.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilizerCode {
    name: String,
    family: String,
    num_qubits: usize,
    distance: usize,
    stabilizers: Vec<SparsePauli>,
    logical_x: Vec<SparsePauli>,
    logical_z: Vec<SparsePauli>,
    layout: Option<CodeLayout>,
}

impl StabilizerCode {
    /// Creates a code from explicit generators and logical operators.
    ///
    /// The nominal `distance` is metadata (used for reporting); it is not
    /// re-derived. Use [`StabilizerCode::validate`] to check group-theoretic
    /// consistency.
    pub fn new(
        name: impl Into<String>,
        family: impl Into<String>,
        num_qubits: usize,
        distance: usize,
        stabilizers: Vec<SparsePauli>,
        logical_x: Vec<SparsePauli>,
        logical_z: Vec<SparsePauli>,
    ) -> Self {
        StabilizerCode {
            name: name.into(),
            family: family.into(),
            num_qubits,
            distance,
            stabilizers,
            logical_x,
            logical_z,
            layout: None,
        }
    }

    /// Attaches planar layout metadata (builder style).
    pub fn with_layout(mut self, layout: CodeLayout) -> Self {
        self.layout = Some(layout);
        self
    }

    /// Overrides the human-readable name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Human-readable instance name, e.g. `"rotated surface [[9,1,3]]"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Code family name, e.g. `"rotated-surface"`.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// Number of physical data qubits `n`.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of logical qubits `k`.
    pub fn num_logicals(&self) -> usize {
        self.logical_x.len()
    }

    /// Nominal code distance `d`.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// The stabilizer generators.
    pub fn stabilizers(&self) -> &[SparsePauli] {
        &self.stabilizers
    }

    /// Logical X operator representatives, one per logical qubit.
    pub fn logical_x(&self) -> &[SparsePauli] {
        &self.logical_x
    }

    /// Logical Z operator representatives, one per logical qubit.
    pub fn logical_z(&self) -> &[SparsePauli] {
        &self.logical_z
    }

    /// The optional planar layout.
    pub fn layout(&self) -> Option<&CodeLayout> {
        self.layout.as_ref()
    }

    /// The `[[n, k, d]]` notation string.
    pub fn parameters(&self) -> String {
        format!("[[{},{},{}]]", self.num_qubits, self.num_logicals(), self.distance)
    }

    /// Classifies one stabilizer generator as X-type, Z-type or mixed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn stabilizer_kind(&self, index: usize) -> StabilizerKind {
        let s = &self.stabilizers[index];
        let mut has_x = false;
        let mut has_z = false;
        for &(_, p) in s.entries() {
            match p {
                Pauli::X => has_x = true,
                Pauli::Z => has_z = true,
                Pauli::Y => {
                    has_x = true;
                    has_z = true;
                }
                Pauli::I => {}
            }
        }
        match (has_x, has_z) {
            (true, false) => StabilizerKind::XType,
            (false, true) => StabilizerKind::ZType,
            _ => StabilizerKind::Mixed,
        }
    }

    /// Whether the code is CSS: every generator is purely X-type or Z-type.
    pub fn is_css(&self) -> bool {
        (0..self.stabilizers.len()).all(|i| self.stabilizer_kind(i) != StabilizerKind::Mixed)
    }

    /// The maximum stabilizer weight.
    pub fn max_stabilizer_weight(&self) -> usize {
        self.stabilizers.iter().map(|s| s.weight()).max().unwrap_or(0)
    }

    /// The symplectic GF(2) matrix of the stabilizer generators (rows are
    /// `(x | z)` vectors of length `2n`).
    pub fn stabilizer_matrix(&self) -> BinMatrix {
        let n = self.num_qubits;
        let rows: Vec<BitVec> = self
            .stabilizers
            .iter()
            .map(|s| {
                let mut v = BitVec::zeros(2 * n);
                for &(q, p) in s.entries() {
                    let (x, z) = p.xz();
                    if x {
                        v.set(q, true);
                    }
                    if z {
                        v.set(n + q, true);
                    }
                }
                v
            })
            .collect();
        BinMatrix::from_rows(rows)
    }

    /// The syndrome of a data-qubit error: bit `i` is set when the error
    /// anticommutes with stabilizer `i`.
    ///
    /// # Panics
    ///
    /// Panics if the error acts on a different number of qubits.
    pub fn syndrome_of(&self, error: &asynd_pauli::PauliString) -> BitVec {
        assert_eq!(error.num_qubits(), self.num_qubits, "error acts on wrong register size");
        BitVec::from_bools(
            self.stabilizers.iter().map(|s| s.to_dense(self.num_qubits).anticommutes_with(error)),
        )
    }

    /// Which logical X / Z observables an error flips.
    ///
    /// Returns `(x_flips, z_flips)` where `x_flips[i]` is set when the error
    /// anticommutes with logical X_i (i.e. the error contains a logical-Z
    /// component on qubit `i`), and symmetrically for `z_flips`.
    pub fn logical_flips(&self, error: &asynd_pauli::PauliString) -> (BitVec, BitVec) {
        let x_flips = BitVec::from_bools(
            self.logical_x.iter().map(|l| l.to_dense(self.num_qubits).anticommutes_with(error)),
        );
        let z_flips = BitVec::from_bools(
            self.logical_z.iter().map(|l| l.to_dense(self.num_qubits).anticommutes_with(error)),
        );
        (x_flips, z_flips)
    }

    /// Checks group-theoretic consistency of the code.
    ///
    /// Verifies that all generators act within range and mutually commute,
    /// that logical operators commute with every generator, that logical
    /// X_i / Z_j anticommute exactly when `i == j`, and that the number of
    /// logical pairs equals `n - rank(S)`.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`CodeError`].
    pub fn validate(&self) -> Result<(), CodeError> {
        let n = self.num_qubits;
        for s in &self.stabilizers {
            if let Some(q) = s.max_qubit() {
                if q >= n {
                    return Err(CodeError::QubitOutOfRange { qubit: q, num_qubits: n });
                }
            }
        }
        for (i, a) in self.stabilizers.iter().enumerate() {
            for (j, b) in self.stabilizers.iter().enumerate().skip(i + 1) {
                if a.anticommutes_with(b) {
                    return Err(CodeError::AnticommutingStabilizers { first: i, second: j });
                }
            }
        }
        for (li, l) in self.logical_x.iter().chain(self.logical_z.iter()).enumerate() {
            for (si, s) in self.stabilizers.iter().enumerate() {
                if l.anticommutes_with(s) {
                    return Err(CodeError::LogicalNotInCentralizer { logical: li, stabilizer: si });
                }
            }
        }
        for (i, lx) in self.logical_x.iter().enumerate() {
            for (j, lz) in self.logical_z.iter().enumerate() {
                let anti = lx.anticommutes_with(lz);
                if anti != (i == j) {
                    return Err(CodeError::BadLogicalPairing { x_index: i, z_index: j });
                }
            }
        }
        for (i, lx) in self.logical_x.iter().enumerate() {
            for (j, lx2) in self.logical_x.iter().enumerate().skip(i + 1) {
                if lx.anticommutes_with(lx2) {
                    return Err(CodeError::BadLogicalPairing { x_index: i, z_index: j });
                }
            }
        }
        for (i, lz) in self.logical_z.iter().enumerate() {
            for (j, lz2) in self.logical_z.iter().enumerate().skip(i + 1) {
                if lz.anticommutes_with(lz2) {
                    return Err(CodeError::BadLogicalPairing { x_index: i, z_index: j });
                }
            }
        }
        // k = n - rank(S) in the symplectic representation.
        let rank = self.stabilizer_matrix().rank();
        let expected_k = n - rank;
        if expected_k != self.num_logicals() {
            return Err(CodeError::WrongLogicalCount {
                expected: expected_k,
                found: self.num_logicals(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for StabilizerCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.parameters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asynd_pauli::PauliString;

    fn bit_flip_code() -> StabilizerCode {
        // [[3,1,1]]-style bit-flip repetition code (protects X errors only;
        // nominal distance recorded as 1 because Z errors are unprotected).
        StabilizerCode::new(
            "bit-flip repetition",
            "repetition",
            3,
            1,
            vec![SparsePauli::uniform(&[0, 1], Pauli::Z), SparsePauli::uniform(&[1, 2], Pauli::Z)],
            vec![SparsePauli::uniform(&[0, 1, 2], Pauli::X)],
            vec![SparsePauli::uniform(&[0], Pauli::Z)],
        )
    }

    #[test]
    fn repetition_code_is_valid() {
        let code = bit_flip_code();
        code.validate().unwrap();
        assert!(code.is_css());
        assert_eq!(code.parameters(), "[[3,1,1]]");
        assert_eq!(code.stabilizer_kind(0), StabilizerKind::ZType);
        assert_eq!(code.max_stabilizer_weight(), 2);
    }

    #[test]
    fn syndrome_of_single_x_error() {
        let code = bit_flip_code();
        let err = PauliString::single(3, 1, Pauli::X);
        let syn = code.syndrome_of(&err);
        assert_eq!(syn.to_bools(), vec![true, true]);
        let err = PauliString::single(3, 0, Pauli::X);
        assert_eq!(code.syndrome_of(&err).to_bools(), vec![true, false]);
    }

    #[test]
    fn logical_flips_detects_logical_error() {
        let code = bit_flip_code();
        let logical_x_error = PauliString::from_str("XXX").unwrap();
        let (x_flips, z_flips) = code.logical_flips(&logical_x_error);
        // An X-type error flips the logical Z observable, not logical X.
        assert!(!x_flips.get(0));
        assert!(z_flips.get(0));
    }

    #[test]
    fn validate_catches_anticommuting_stabilizers() {
        let bad = StabilizerCode::new(
            "bad",
            "bad",
            2,
            1,
            vec![SparsePauli::uniform(&[0], Pauli::X), SparsePauli::uniform(&[0], Pauli::Z)],
            vec![],
            vec![],
        );
        assert!(matches!(bad.validate(), Err(CodeError::AnticommutingStabilizers { .. })));
    }

    #[test]
    fn validate_catches_wrong_logical_count() {
        let bad = StabilizerCode::new(
            "bad",
            "bad",
            3,
            1,
            vec![SparsePauli::uniform(&[0, 1], Pauli::Z)],
            vec![],
            vec![],
        );
        assert!(matches!(bad.validate(), Err(CodeError::WrongLogicalCount { .. })));
    }

    #[test]
    fn validate_catches_bad_pairing() {
        let mut code = bit_flip_code();
        // Replace logical Z with something commuting with logical X.
        code.logical_z = vec![SparsePauli::uniform(&[0, 1], Pauli::Z)];
        assert!(matches!(code.validate(), Err(CodeError::BadLogicalPairing { .. })));
    }

    #[test]
    fn display_and_layout() {
        let code = bit_flip_code().with_layout(CodeLayout {
            data_coords: vec![(0, 0), (0, 2), (0, 4)],
            stab_coords: vec![(0, 1), (0, 3)],
        });
        assert!(code.layout().is_some());
        assert_eq!(code.to_string(), "bit-flip repetition [[3,1,1]]");
    }
}

//! Shor-type repetition-of-repetition codes `[[d², 1, d]]`.

use asynd_pauli::BinMatrix;

use crate::{CssCode, StabilizerCode};

/// The generalized Shor code `[[d², 1, d]]`: `d` blocks of `d` qubits, with
/// weight-2 Z checks inside each block and weight-`2d` X checks between
/// adjacent blocks.
///
/// This family stands in for the triangular colour-code scaling series of
/// the paper (see DESIGN.md §3): it is an exactly constructible, `k = 1`
/// CSS family with odd distances 3, 5, 7, 9 whose high-weight X checks make
/// hook-error scheduling highly consequential.
///
/// # Panics
///
/// Panics if `d < 2`.
///
/// # Example
///
/// ```
/// use asynd_codes::generalized_shor_code;
/// let code = generalized_shor_code(3);
/// assert_eq!(code.parameters(), "[[9,1,3]]");
/// ```
pub fn generalized_shor_code(d: usize) -> StabilizerCode {
    assert!(d >= 2, "generalized Shor code needs d >= 2");
    let n = d * d;
    // Z checks: Z_i Z_{i+1} within each block.
    let mut z_rows = Vec::new();
    for block in 0..d {
        for i in 0..d - 1 {
            z_rows.push(vec![block * d + i, block * d + i + 1]);
        }
    }
    // X checks: X on every qubit of two adjacent blocks.
    let mut x_rows = Vec::new();
    for block in 0..d - 1 {
        let mut row: Vec<usize> = (0..d).map(|i| block * d + i).collect();
        row.extend((0..d).map(|i| (block + 1) * d + i));
        x_rows.push(row);
    }
    let hx = BinMatrix::from_row_supports(n, &x_rows);
    let hz = BinMatrix::from_row_supports(n, &z_rows);
    CssCode::new(hx, hz)
        .build(format!("generalized Shor d={d}"), "shor", d)
        .expect("Shor construction always satisfies the CSS condition")
}

/// The original Shor code `[[9, 1, 3]]`.
pub fn shor_code() -> StabilizerCode {
    generalized_shor_code(3).with_name("shor")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shor_code_parameters() {
        let code = shor_code();
        assert_eq!(code.num_qubits(), 9);
        assert_eq!(code.num_logicals(), 1);
        assert_eq!(code.stabilizers().len(), 8);
        code.validate().unwrap();
    }

    #[test]
    fn generalized_family() {
        for d in [2, 3, 5, 7] {
            let code = generalized_shor_code(d);
            assert_eq!(code.num_qubits(), d * d);
            assert_eq!(code.num_logicals(), 1);
            assert_eq!(code.stabilizers().len(), d * d - 1);
            assert_eq!(code.max_stabilizer_weight(), 2 * d);
            code.validate().unwrap();
        }
    }
}

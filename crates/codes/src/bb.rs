//! Bivariate-bicycle (BB) codes, the family behind IBM's `[[72,12,6]]`
//! "gross"-style quantum memory.

use asynd_pauli::BinMatrix;

use crate::{CodeError, CssCode, StabilizerCode};

/// A monomial `x^a y^b` of the bivariate polynomial ring
/// `F2[x, y] / (x^l - 1, y^m - 1)` used to define a BB code.
type Monomial = (usize, usize);

/// Builds the `lm x lm` circulant matrix of a sum of monomials.
///
/// Row index `i = r*m + c` corresponds to the group element `x^r y^c`; the
/// monomial `x^a y^b` maps it to `x^{r+a} y^{c+b}`.
fn polynomial_matrix(l: usize, m: usize, terms: &[Monomial]) -> BinMatrix {
    let size = l * m;
    let mut mat = BinMatrix::zeros(size, size);
    for r in 0..l {
        for c in 0..m {
            let row = r * m + c;
            for &(a, b) in terms {
                let col = ((r + a) % l) * m + ((c + b) % m);
                // XOR semantics: repeated terms cancel over GF(2).
                mat.set(row, col, !mat.get(row, col));
            }
        }
    }
    mat
}

/// Constructs a bivariate-bicycle code from its defining polynomials.
///
/// The code has `n = 2 l m` qubits with `Hx = [A | B]` and `Hz = [Bᵀ | Aᵀ]`,
/// where `A` and `B` are the circulant matrices of `a_terms` and `b_terms`
/// (lists of `(x-power, y-power)` monomials).
///
/// The number of logical qubits is whatever the construction yields
/// (`k = n - rank Hx - rank Hz`); the `distance` argument is recorded as the
/// nominal distance.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParameter`] if `l` or `m` is zero or a term
/// list is empty.
///
/// # Example
///
/// ```
/// use asynd_codes::bivariate_bicycle_code;
/// // IBM's [[72, 12, 6]] code.
/// let code = bivariate_bicycle_code(6, 6, &[(3, 0), (0, 1), (0, 2)], &[(0, 3), (1, 0), (2, 0)], 6)
///     .unwrap();
/// assert_eq!(code.parameters(), "[[72,12,6]]");
/// ```
pub fn bivariate_bicycle_code(
    l: usize,
    m: usize,
    a_terms: &[Monomial],
    b_terms: &[Monomial],
    distance: usize,
) -> Result<StabilizerCode, CodeError> {
    if l == 0 || m == 0 {
        return Err(CodeError::InvalidParameter { reason: "l and m must be positive".into() });
    }
    if a_terms.is_empty() || b_terms.is_empty() {
        return Err(CodeError::InvalidParameter {
            reason: "polynomials A and B need at least one monomial".into(),
        });
    }
    let a = polynomial_matrix(l, m, a_terms);
    let b = polynomial_matrix(l, m, b_terms);
    let hx = a.hstack(&b);
    let hz = b.transpose().hstack(&a.transpose());
    CssCode::new(hx, hz).build(
        format!("bivariate bicycle l={l} m={m}"),
        "bivariate-bicycle",
        distance,
    )
}

/// IBM's `[[72, 12, 6]]` bivariate-bicycle code
/// (`A = x³ + y + y²`, `B = y³ + x + x²`, `l = m = 6`), the code compared
/// against IBM's hand-crafted schedule in the paper's Figure 13.
pub fn bb_code_72_12_6() -> StabilizerCode {
    bivariate_bicycle_code(6, 6, &[(3, 0), (0, 1), (0, 2)], &[(0, 3), (1, 0), (2, 0)], 6)
        .expect("the [[72,12,6]] parameters are valid")
        .with_name("bivariate bicycle [[72,12,6]]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circulant_matrix_row_weight() {
        let m = polynomial_matrix(3, 3, &[(1, 0), (0, 1)]);
        for i in 0..9 {
            assert_eq!(m.row(i).count_ones(), 2);
        }
    }

    #[test]
    fn bb_72_12_6_parameters() {
        let code = bb_code_72_12_6();
        assert_eq!(code.num_qubits(), 72);
        assert_eq!(code.num_logicals(), 12);
        assert_eq!(code.max_stabilizer_weight(), 6);
        code.validate().unwrap();
    }

    #[test]
    fn smaller_bb_instance_is_valid() {
        // The [[18, 4, 4]]-ish toy instance A = 1 + x, B = 1 + y on a 3x3 torus.
        let code = bivariate_bicycle_code(3, 3, &[(0, 0), (1, 0)], &[(0, 0), (0, 1)], 2).unwrap();
        assert_eq!(code.num_qubits(), 18);
        code.validate().unwrap();
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(bivariate_bicycle_code(0, 3, &[(0, 0)], &[(0, 0)], 1).is_err());
        assert!(bivariate_bicycle_code(3, 3, &[], &[(0, 0)], 1).is_err());
    }
}

//! Sparse Pauli operators (list of non-identity sites).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Pauli, PauliString};

/// A sparse Pauli operator: a sorted list of `(qubit, Pauli)` pairs with no
/// identity entries and no duplicate qubits.
///
/// Sparse operators are the natural representation for stabilizer
/// generators of LDPC codes, whose weight is constant while the block length
/// grows.
///
/// # Example
///
/// ```
/// use asynd_pauli::{Pauli, SparsePauli};
///
/// let s = SparsePauli::new(vec![(4, Pauli::Z), (1, Pauli::X)]);
/// assert_eq!(s.weight(), 2);
/// assert_eq!(s.entries(), &[(1, Pauli::X), (4, Pauli::Z)]);
/// assert_eq!(s.to_dense(6).to_string(), "IXIIZI");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SparsePauli {
    entries: Vec<(usize, Pauli)>,
}

impl SparsePauli {
    /// Builds a sparse Pauli from arbitrary `(qubit, Pauli)` pairs.
    ///
    /// Entries are multiplied together per qubit (so duplicates compose),
    /// identities are dropped, and the result is sorted by qubit.
    pub fn new(entries: Vec<(usize, Pauli)>) -> Self {
        let mut merged: Vec<(usize, Pauli)> = Vec::with_capacity(entries.len());
        let mut sorted = entries;
        sorted.sort_by_key(|&(q, _)| q);
        for (q, p) in sorted {
            match merged.last_mut() {
                Some((lq, lp)) if *lq == q => *lp = *lp * p,
                _ => merged.push((q, p)),
            }
        }
        merged.retain(|&(_, p)| !p.is_identity());
        SparsePauli { entries: merged }
    }

    /// An empty (identity) sparse operator.
    pub fn identity() -> Self {
        SparsePauli { entries: Vec::new() }
    }

    /// Builds an all-`pauli` operator on the given qubits.
    pub fn uniform(qubits: &[usize], pauli: Pauli) -> Self {
        SparsePauli::new(qubits.iter().map(|&q| (q, pauli)).collect())
    }

    /// The canonical (sorted, de-duplicated, identity-free) entry list.
    pub fn entries(&self) -> &[(usize, Pauli)] {
        &self.entries
    }

    /// The Pauli acting on `qubit` (identity if absent).
    pub fn get(&self, qubit: usize) -> Pauli {
        self.entries
            .binary_search_by_key(&qubit, |&(q, _)| q)
            .map(|i| self.entries[i].1)
            .unwrap_or(Pauli::I)
    }

    /// Number of non-identity sites.
    pub fn weight(&self) -> usize {
        self.entries.len()
    }

    /// Whether the operator is the identity.
    pub fn is_identity(&self) -> bool {
        self.entries.is_empty()
    }

    /// The qubits on which the operator acts non-trivially, ascending.
    pub fn support(&self) -> Vec<usize> {
        self.entries.iter().map(|&(q, _)| q).collect()
    }

    /// The largest qubit index touched, if any.
    pub fn max_qubit(&self) -> Option<usize> {
        self.entries.last().map(|&(q, _)| q)
    }

    /// Whether two sparse operators commute.
    pub fn commutes_with(&self, other: &SparsePauli) -> bool {
        let mut anticommuting_overlaps = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() && j < other.entries.len() {
            let (qa, pa) = self.entries[i];
            let (qb, pb) = other.entries[j];
            match qa.cmp(&qb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if pa.anticommutes_with(pb) {
                        anticommuting_overlaps += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        anticommuting_overlaps.is_multiple_of(2)
    }

    /// Whether two sparse operators anticommute.
    pub fn anticommutes_with(&self, other: &SparsePauli) -> bool {
        !self.commutes_with(other)
    }

    /// The product of two sparse operators (phases discarded).
    pub fn product(&self, other: &SparsePauli) -> SparsePauli {
        let mut entries = self.entries.clone();
        entries.extend_from_slice(&other.entries);
        SparsePauli::new(entries)
    }

    /// Densifies onto a register of `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if any entry is out of range.
    pub fn to_dense(&self, num_qubits: usize) -> PauliString {
        PauliString::from_sparse(num_qubits, &self.entries)
    }
}

impl fmt::Debug for SparsePauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparsePauli{{")?;
        for (i, (q, p)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}{q}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for SparsePauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "I");
        }
        for (i, (q, p)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, "*")?;
            }
            write!(f, "{p}{q}")?;
        }
        Ok(())
    }
}

impl From<&PauliString> for SparsePauli {
    fn from(dense: &PauliString) -> Self {
        dense.to_sparse()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_merges_and_sorts() {
        let s = SparsePauli::new(vec![(3, Pauli::X), (1, Pauli::Z), (3, Pauli::Z), (2, Pauli::I)]);
        assert_eq!(s.entries(), &[(1, Pauli::Z), (3, Pauli::Y)]);
        assert_eq!(s.get(3), Pauli::Y);
        assert_eq!(s.get(0), Pauli::I);
    }

    #[test]
    fn duplicate_cancellation() {
        let s = SparsePauli::new(vec![(0, Pauli::X), (0, Pauli::X)]);
        assert!(s.is_identity());
        assert_eq!(s.to_string(), "I");
    }

    #[test]
    fn commutation_matches_dense() {
        let a = SparsePauli::new(vec![(0, Pauli::X), (2, Pauli::Z)]);
        let b = SparsePauli::new(vec![(0, Pauli::Z), (2, Pauli::X)]);
        let c = SparsePauli::new(vec![(0, Pauli::Z)]);
        assert!(a.commutes_with(&b));
        assert!(a.anticommutes_with(&c));
        assert_eq!(a.commutes_with(&b), a.to_dense(3).commutes_with(&b.to_dense(3)));
        assert_eq!(a.commutes_with(&c), a.to_dense(3).commutes_with(&c.to_dense(3)));
    }

    #[test]
    fn uniform_and_product() {
        let zz = SparsePauli::uniform(&[0, 1], Pauli::Z);
        let xx = SparsePauli::uniform(&[1, 2], Pauli::X);
        let prod = zz.product(&xx);
        assert_eq!(prod.entries(), &[(0, Pauli::Z), (1, Pauli::Y), (2, Pauli::X)]);
        assert_eq!(prod.max_qubit(), Some(2));
    }

    #[test]
    fn dense_sparse_roundtrip() {
        let dense = PauliString::from_str("IXZYI").unwrap();
        let sparse: SparsePauli = (&dense).into();
        assert_eq!(sparse.to_dense(5), dense);
    }
}

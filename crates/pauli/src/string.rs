//! Dense bit-packed n-qubit Pauli operators.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{BitVec, Pauli, PauliError, SparsePauli};

/// A dense n-qubit Pauli operator modulo global phase.
///
/// Internally the operator is stored as two bit planes (`x` and `z`), so
/// multiplication and commutation checks are word-parallel. Phases are
/// deliberately not tracked: for syndrome extraction, error propagation and
/// decoding only the projective Pauli group matters.
///
/// # Example
///
/// ```
/// use asynd_pauli::{Pauli, PauliString};
///
/// let s = PauliString::from_str("XZZX").unwrap();
/// assert_eq!(s.weight(), 4);
/// assert_eq!(s.get(1), Pauli::Z);
///
/// let t = PauliString::from_sparse(4, &[(0, Pauli::Z)]);
/// assert!(!s.commutes_with(&t));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PauliString {
    num_qubits: usize,
    x: BitVec,
    z: BitVec,
}

impl PauliString {
    /// The identity operator on `num_qubits` qubits.
    pub fn identity(num_qubits: usize) -> Self {
        PauliString { num_qubits, x: BitVec::zeros(num_qubits), z: BitVec::zeros(num_qubits) }
    }

    /// Builds a Pauli string from explicit X and Z bit planes.
    ///
    /// # Panics
    ///
    /// Panics if the two planes have different lengths.
    pub fn from_xz_planes(x: BitVec, z: BitVec) -> Self {
        assert_eq!(x.len(), z.len(), "X and Z planes must have equal length");
        let num_qubits = x.len();
        PauliString { num_qubits, x, z }
    }

    /// Parses a textual Pauli string such as `"XIZZY"`.
    ///
    /// Accepts upper/lower case and `_` for identity.
    ///
    /// # Errors
    ///
    /// Returns [`PauliError::InvalidCharacter`] on any other character.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<Self, PauliError> {
        let mut s = PauliString::identity(text.chars().count());
        for (i, c) in text.chars().enumerate() {
            let p = Pauli::from_char(c)
                .map_err(|_| PauliError::InvalidCharacter { character: c, position: i })?;
            s.set(i, p);
        }
        Ok(s)
    }

    /// Builds an operator of `num_qubits` qubits from sparse (qubit, Pauli)
    /// pairs. Later entries on the same qubit are multiplied in.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn from_sparse(num_qubits: usize, entries: &[(usize, Pauli)]) -> Self {
        let mut s = PauliString::identity(num_qubits);
        for &(q, p) in entries {
            assert!(q < num_qubits, "qubit {q} out of range for {num_qubits}-qubit operator");
            s.set(q, s.get(q) * p);
        }
        s
    }

    /// A single-qubit Pauli embedded in an `num_qubits`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= num_qubits`.
    pub fn single(num_qubits: usize, qubit: usize, pauli: Pauli) -> Self {
        Self::from_sparse(num_qubits, &[(qubit, pauli)])
    }

    /// Number of qubits the operator is defined on.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The Pauli acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[inline]
    pub fn get(&self, qubit: usize) -> Pauli {
        Pauli::from_xz(self.x.get(qubit), self.z.get(qubit))
    }

    /// Sets the Pauli acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    #[inline]
    pub fn set(&mut self, qubit: usize, pauli: Pauli) {
        let (x, z) = pauli.xz();
        self.x.set(qubit, x);
        self.z.set(qubit, z);
    }

    /// Multiplies `pauli` onto the given qubit (in place, phases discarded).
    #[inline]
    pub fn mul_assign_single(&mut self, qubit: usize, pauli: Pauli) {
        self.set(qubit, self.get(qubit) * pauli);
    }

    /// Whether the operator is the identity.
    pub fn is_identity(&self) -> bool {
        !self.x.any() && !self.z.any()
    }

    /// Number of qubits on which the operator acts non-trivially.
    pub fn weight(&self) -> usize {
        // weight = |support(x) ∪ support(z)|
        self.x.words().iter().zip(self.z.words()).map(|(a, b)| (a | b).count_ones() as usize).sum()
    }

    /// The qubits on which the operator acts non-trivially, ascending.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_qubits).filter(|&q| !self.get(q).is_identity()).collect()
    }

    /// Whether two operators commute (symplectic inner product is zero).
    ///
    /// # Panics
    ///
    /// Panics if the operators act on different numbers of qubits.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "cannot compare Pauli operators on different register sizes"
        );
        // <P,Q> = x_P · z_Q + z_P · x_Q (mod 2)
        !(self.x.dot(&other.z) ^ self.z.dot(&other.x))
    }

    /// Whether two operators anticommute.
    pub fn anticommutes_with(&self, other: &PauliString) -> bool {
        !self.commutes_with(other)
    }

    /// Multiplies `other` into `self` (phases discarded).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn mul_assign(&mut self, other: &PauliString) {
        assert_eq!(self.num_qubits, other.num_qubits, "length mismatch in PauliString::mul_assign");
        self.x.xor_with(&other.x);
        self.z.xor_with(&other.z);
    }

    /// Returns the product `self * other` (phases discarded).
    pub fn product(&self, other: &PauliString) -> PauliString {
        let mut out = self.clone();
        out.mul_assign(other);
        out
    }

    /// The X bit plane (bit q set iff qubit q carries `X` or `Y`).
    pub fn x_plane(&self) -> &BitVec {
        &self.x
    }

    /// The Z bit plane (bit q set iff qubit q carries `Z` or `Y`).
    pub fn z_plane(&self) -> &BitVec {
        &self.z
    }

    /// Restriction of the operator to the first `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > num_qubits()`.
    pub fn truncated(&self, n: usize) -> PauliString {
        assert!(n <= self.num_qubits);
        let mut out = PauliString::identity(n);
        for q in 0..n {
            out.set(q, self.get(q));
        }
        out
    }

    /// Embeds the operator into a larger register, occupying qubits
    /// `[offset, offset + num_qubits())`.
    ///
    /// # Panics
    ///
    /// Panics if the embedded operator does not fit.
    pub fn embedded(&self, total_qubits: usize, offset: usize) -> PauliString {
        assert!(offset + self.num_qubits <= total_qubits, "embedded operator does not fit");
        let mut out = PauliString::identity(total_qubits);
        for q in 0..self.num_qubits {
            out.set(offset + q, self.get(q));
        }
        out
    }

    /// Converts to a sparse representation.
    pub fn to_sparse(&self) -> SparsePauli {
        SparsePauli::new(
            (0..self.num_qubits)
                .filter_map(|q| {
                    let p = self.get(q);
                    (!p.is_identity()).then_some((q, p))
                })
                .collect(),
        )
    }

    /// Iterator over `(qubit, Pauli)` for all qubits (including identities).
    pub fn iter(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        (0..self.num_qubits).map(move |q| (q, self.get(q)))
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString(\"{self}\")")
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in 0..self.num_qubits {
            write!(f, "{}", self.get(q).to_char())?;
        }
        Ok(())
    }
}

impl FromStr for PauliString {
    type Err = PauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PauliString::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        let s = PauliString::from_str("XIZY_x").unwrap();
        assert_eq!(s.to_string(), "XIZYIX");
        assert_eq!(s.num_qubits(), 6);
        assert_eq!(s.weight(), 4);
        assert_eq!(s.support(), vec![0, 2, 3, 5]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = PauliString::from_str("XQ").unwrap_err();
        assert_eq!(err, PauliError::InvalidCharacter { character: 'Q', position: 1 });
    }

    #[test]
    fn commutation_examples() {
        let zz = PauliString::from_str("ZZI").unwrap();
        let xx = PauliString::from_str("XXI").unwrap();
        let xi = PauliString::from_str("XII").unwrap();
        let yy = PauliString::from_str("YYI").unwrap();
        assert!(zz.commutes_with(&xx));
        assert!(zz.anticommutes_with(&xi));
        assert!(zz.commutes_with(&yy));
        assert!(xx.commutes_with(&yy));
    }

    #[test]
    fn product_discards_phase() {
        let x = PauliString::from_str("X").unwrap();
        let z = PauliString::from_str("Z").unwrap();
        assert_eq!(x.product(&z).to_string(), "Y");
        assert_eq!(z.product(&x).to_string(), "Y");
        assert_eq!(x.product(&x).to_string(), "I");
    }

    #[test]
    fn sparse_roundtrip() {
        let s = PauliString::from_sparse(5, &[(1, Pauli::X), (4, Pauli::Z), (1, Pauli::Z)]);
        assert_eq!(s.to_string(), "IYIIZ");
        let sp = s.to_sparse();
        assert_eq!(sp.entries(), &[(1, Pauli::Y), (4, Pauli::Z)]);
        assert_eq!(sp.to_dense(5), s);
    }

    #[test]
    fn embed_and_truncate() {
        let s = PauliString::from_str("XZ").unwrap();
        let e = s.embedded(5, 2);
        assert_eq!(e.to_string(), "IIXZI");
        assert_eq!(e.truncated(3).to_string(), "IIX");
    }

    #[test]
    #[should_panic(expected = "different register sizes")]
    fn commute_length_mismatch_panics() {
        let a = PauliString::identity(2);
        let b = PauliString::identity(3);
        let _ = a.commutes_with(&b);
    }
}

//! Error types for the Pauli algebra substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by constructors and operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PauliError {
    /// A textual Pauli string contained a character outside `I`, `X`, `Y`, `Z`
    /// (case-insensitive) and `_` (treated as identity).
    InvalidCharacter {
        /// The offending character.
        character: char,
        /// Byte position inside the input string.
        position: usize,
    },
    /// Two operands act on a different number of qubits.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A qubit index was outside the operator's support range.
    QubitOutOfRange {
        /// The requested qubit.
        qubit: usize,
        /// The number of qubits of the operator.
        len: usize,
    },
    /// Matrix dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expectation that failed.
        context: String,
    },
    /// A linear system had no solution.
    NoSolution,
}

impl fmt::Display for PauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PauliError::InvalidCharacter { character, position } => {
                write!(f, "invalid pauli character {character:?} at position {position}")
            }
            PauliError::LengthMismatch { left, right } => {
                write!(f, "operand lengths differ: {left} vs {right}")
            }
            PauliError::QubitOutOfRange { qubit, len } => {
                write!(f, "qubit index {qubit} out of range for {len}-qubit operator")
            }
            PauliError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            PauliError::NoSolution => write!(f, "linear system has no solution"),
        }
    }
}

impl Error for PauliError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            PauliError::InvalidCharacter { character: 'q', position: 3 },
            PauliError::LengthMismatch { left: 2, right: 4 },
            PauliError::QubitOutOfRange { qubit: 9, len: 4 },
            PauliError::DimensionMismatch { context: "rows".into() },
            PauliError::NoSolution,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PauliError>();
    }
}

//! Pauli-string and GF(2) linear-algebra substrate for the AlphaSyndrome
//! reproduction.
//!
//! This crate provides the low-level algebra every other crate in the
//! workspace is built on:
//!
//! * [`Pauli`] — the single-qubit Pauli group modulo phase (`I`, `X`, `Y`,
//!   `Z`), with multiplication and commutation.
//! * [`PauliString`] — a dense, bit-packed n-qubit Pauli operator (two bit
//!   planes, X and Z), with O(n/64) multiplication and symplectic
//!   commutation tests.
//! * [`SparsePauli`] — a sparse list-of-(qubit, Pauli) representation used
//!   when defining stabilizer codes.
//! * [`BitVec`] — a plain bit vector used for syndromes and samples.
//! * [`BinMatrix`] — a GF(2) matrix with bit-packed rows supporting row
//!   reduction, rank, solving linear systems, kernel bases and products.
//!
//! # Example
//!
//! ```
//! use asynd_pauli::{Pauli, PauliString};
//!
//! // Stabilizers of the 2-qubit repetition code.
//! let zz = PauliString::from_str("ZZ").unwrap();
//! let xx = PauliString::from_str("XX").unwrap();
//! let xi = PauliString::from_str("XI").unwrap();
//!
//! assert!(zz.commutes_with(&xx));
//! assert!(!zz.commutes_with(&xi));
//! assert_eq!(zz.get(0), Pauli::Z);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binmat;
mod bitvec;
mod error;
mod pauli;
mod sparse;
mod string;
mod symplectic;

pub use binmat::BinMatrix;
pub use bitvec::BitVec;
pub use error::PauliError;
pub use pauli::Pauli;
pub use sparse::SparsePauli;
pub use string::PauliString;
pub use symplectic::{symplectic_complement_pairs, SymplecticPairing};

//! A compact bit vector used for syndromes, detector samples and GF(2) rows.

use std::fmt;

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A growable, bit-packed vector of booleans over `u64` words.
///
/// `BitVec` is the workhorse container for syndromes, detector samples,
/// observable masks and GF(2) matrix rows. All bitwise operations are
/// word-parallel.
///
/// # Example
///
/// ```
/// use asynd_pauli::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(7, true);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(3));
///
/// let mut w = BitVec::zeros(10);
/// w.set(3, true);
/// v.xor_with(&w);
/// assert_eq!(v.ones().collect::<Vec<_>>(), vec![7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        BitVec { words: vec![0u64; len.div_ceil(WORD_BITS)], len }
    }

    /// Creates a bit vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut v = BitVec::zeros(0);
        for b in iter {
            v.push(b);
        }
        v
    }

    /// Builds a bit vector of length `len` directly from packed words,
    /// without copying — the inverse of [`BitVec::words`].
    ///
    /// This is the zero-cost bridge from word-packed shot matrices (a
    /// transposed shot-major row has exactly this layout) to the syndrome
    /// type the decoders consume.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != len.div_ceil(64)` or any padding bit past
    /// `len` is set (every other constructor maintains that invariant, and
    /// word-parallel reductions rely on it).
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(words.len(), len.div_ceil(WORD_BITS), "word count mismatch for length {len}");
        if !len.is_multiple_of(WORD_BITS) {
            let tail = words.last().copied().unwrap_or(0);
            assert_eq!(
                tail & !((1u64 << (len % WORD_BITS)) - 1),
                0,
                "padding bits past length {len} must be zero"
            );
        }
        BitVec { words, len }
    }

    /// Creates a bit vector of length `len` with ones at `indices`.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= len`.
    pub fn from_indices(len: usize, indices: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in indices {
            v.set(i, true);
        }
        v
    }

    /// The number of bits stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    pub fn push(&mut self, bit: bool) {
        let idx = self.len;
        self.len += 1;
        if self.words.len() * WORD_BITS < self.len {
            self.words.push(0);
        }
        self.set(idx, bit);
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range for length {}", self.len);
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Writes the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bit index {index} out of range for length {}", self.len);
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn flip(&mut self, index: usize) {
        assert!(index < self.len, "bit index {index} out of range for length {}", self.len);
        self.words[index / WORD_BITS] ^= 1u64 << (index % WORD_BITS);
    }

    /// Sets every bit to zero, keeping the length.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// XORs `other` into `self` element-wise.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in BitVec::xor_with");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// ANDs `other` into `self` element-wise.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in BitVec::and_with");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Parity (mod-2 sum) of the AND of two bit vectors — i.e. the GF(2)
    /// inner product.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch in BitVec::dot");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }

    /// Iterator over all bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Converts into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Raw word access (low-level; trailing bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        BitVec::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut v = BitVec::zeros(0);
        for i in 0..130 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 130);
        for i in 0..130 {
            assert_eq!(v.get(i), i % 3 == 0, "bit {i}");
        }
        v.set(129, true);
        assert!(v.get(129));
        v.flip(129);
        assert!(!v.get(129));
    }

    #[test]
    fn ones_iterator() {
        let v = BitVec::from_indices(200, &[0, 63, 64, 65, 199]);
        assert_eq!(v.ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 199]);
        assert_eq!(v.count_ones(), 5);
    }

    #[test]
    fn xor_and_dot() {
        let a = BitVec::from_indices(70, &[1, 5, 69]);
        let b = BitVec::from_indices(70, &[5, 6, 69]);
        let mut c = a.clone();
        c.xor_with(&b);
        assert_eq!(c.ones().collect::<Vec<_>>(), vec![1, 6]);
        // dot = |{5, 69}| mod 2 = 0
        assert!(!a.dot(&b));
        let d = BitVec::from_indices(70, &[5]);
        assert!(a.dot(&d));
    }

    #[test]
    fn from_bools_roundtrip() {
        let bools = vec![true, false, true, true, false];
        let v: BitVec = bools.iter().copied().collect();
        assert_eq!(v.to_bools(), bools);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(3);
        let _ = v.get(3);
    }

    #[test]
    fn debug_nonempty() {
        let v = BitVec::zeros(2);
        assert_eq!(format!("{v:?}"), "BitVec[00]");
    }
}

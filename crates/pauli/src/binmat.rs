//! Dense GF(2) matrices with bit-packed rows.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BitVec, PauliError};

/// A dense matrix over GF(2) with bit-packed rows.
///
/// `BinMatrix` underlies the linear algebra used throughout the workspace:
/// extracting logical operators of CSS codes (kernels and quotients),
/// checking stabilizer independence (rank), the OSD stage of BP-OSD
/// (Gaussian elimination and solving) and the cluster-validity test of the
/// hypergraph union-find decoder.
///
/// # Example
///
/// ```
/// use asynd_pauli::{BinMatrix, BitVec};
///
/// // Parity-check matrix of the 3-bit repetition code.
/// let h = BinMatrix::from_dense(&[
///     &[1, 1, 0],
///     &[0, 1, 1],
/// ]);
/// assert_eq!(h.rank(), 2);
/// let kernel = h.kernel_basis();
/// assert_eq!(kernel.len(), 1);
/// assert_eq!(kernel[0].ones().collect::<Vec<_>>(), vec![0, 1, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinMatrix {
    rows: Vec<BitVec>,
    num_cols: usize,
}

impl BinMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(num_rows: usize, num_cols: usize) -> Self {
        BinMatrix { rows: vec![BitVec::zeros(num_cols); num_rows], num_cols }
    }

    /// Creates the identity matrix of the given size.
    pub fn identity(n: usize) -> Self {
        let mut m = BinMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from rows of 0/1 integers.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_dense<R: AsRef<[u8]>>(rows: &[R]) -> Self {
        let num_cols = rows.first().map(|r| r.as_ref().len()).unwrap_or(0);
        let mut m = BinMatrix::zeros(rows.len(), num_cols);
        for (i, row) in rows.iter().enumerate() {
            let row = row.as_ref();
            assert_eq!(row.len(), num_cols, "ragged rows in BinMatrix::from_dense");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v % 2 == 1);
            }
        }
        m
    }

    /// Builds a matrix from pre-built bit rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let num_cols = rows.first().map(|r| r.len()).unwrap_or(0);
        for r in &rows {
            assert_eq!(r.len(), num_cols, "ragged rows in BinMatrix::from_rows");
        }
        BinMatrix { rows, num_cols }
    }

    /// Builds a matrix from per-row lists of set-column indices.
    pub fn from_row_supports(num_cols: usize, supports: &[Vec<usize>]) -> Self {
        let rows = supports.iter().map(|s| BitVec::from_indices(num_cols, s)).collect();
        BinMatrix { rows, num_cols }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Reads entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        self.rows[row].get(col)
    }

    /// Writes entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        self.rows[row].set(col, value);
    }

    /// Borrow of one row.
    pub fn row(&self, row: usize) -> &BitVec {
        &self.rows[row]
    }

    /// All rows.
    pub fn rows(&self) -> &[BitVec] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the matrix width.
    pub fn push_row(&mut self, row: BitVec) {
        assert_eq!(row.len(), self.num_cols, "row width mismatch in push_row");
        self.rows.push(row);
    }

    /// XORs row `src` into row `dst`.
    pub fn add_row_into(&mut self, src: usize, dst: usize) {
        assert_ne!(src, dst, "cannot add a row into itself");
        let (a, b) = if src < dst {
            let (lo, hi) = self.rows.split_at_mut(dst);
            (&lo[src], &mut hi[0])
        } else {
            let (lo, hi) = self.rows.split_at_mut(src);
            (&hi[0], &mut lo[dst])
        };
        b.xor_with(a);
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> BinMatrix {
        let mut t = BinMatrix::zeros(self.num_cols, self.num_rows());
        for (i, row) in self.rows.iter().enumerate() {
            for j in row.ones() {
                t.set(j, i, true);
            }
        }
        t
    }

    /// Matrix-vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != num_cols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.num_cols, "vector length mismatch in mul_vec");
        BitVec::from_bools(self.rows.iter().map(|r| r.dot(v)))
    }

    /// Matrix-matrix product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, other: &BinMatrix) -> BinMatrix {
        assert_eq!(self.num_cols, other.num_rows(), "inner dimension mismatch in mul");
        let other_t = other.transpose();
        let mut out = BinMatrix::zeros(self.num_rows(), other.num_cols());
        for (i, row) in self.rows.iter().enumerate() {
            for (j, col) in other_t.rows.iter().enumerate() {
                if row.dot(col) {
                    out.set(i, j, true);
                }
            }
        }
        out
    }

    /// Horizontally concatenates `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &BinMatrix) -> BinMatrix {
        assert_eq!(self.num_rows(), other.num_rows(), "row count mismatch in hstack");
        let mut out = BinMatrix::zeros(self.num_rows(), self.num_cols + other.num_cols);
        for i in 0..self.num_rows() {
            for j in self.rows[i].ones() {
                out.set(i, j, true);
            }
            for j in other.rows[i].ones() {
                out.set(i, self.num_cols + j, true);
            }
        }
        out
    }

    /// Vertically concatenates `[self; other]`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &BinMatrix) -> BinMatrix {
        assert_eq!(self.num_cols, other.num_cols, "column count mismatch in vstack");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        BinMatrix { rows, num_cols: self.num_cols }
    }

    /// In-place Gaussian elimination to row echelon form.
    ///
    /// Returns the pivot columns, one per non-zero row of the reduced form
    /// (so `pivots.len()` is the rank). The reduction is "reduced" row
    /// echelon: pivot columns are cleared above and below the pivot.
    pub fn row_reduce(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0usize;
        for col in 0..self.num_cols {
            if pivot_row >= self.rows.len() {
                break;
            }
            // Find a row at or below pivot_row with a 1 in this column.
            let Some(found) = (pivot_row..self.rows.len()).find(|&r| self.rows[r].get(col)) else {
                continue;
            };
            self.rows.swap(pivot_row, found);
            // Clear the column everywhere else.
            for r in 0..self.rows.len() {
                if r != pivot_row && self.rows[r].get(col) {
                    self.add_row_into(pivot_row, r);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }

    /// The rank of the matrix.
    pub fn rank(&self) -> usize {
        let mut copy = self.clone();
        copy.row_reduce().len()
    }

    /// A basis of the kernel (null space) `{x : A x = 0}`.
    pub fn kernel_basis(&self) -> Vec<BitVec> {
        let mut reduced = self.clone();
        let pivots = reduced.row_reduce();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let free_cols: Vec<usize> = (0..self.num_cols).filter(|c| !pivot_set.contains(c)).collect();
        let mut basis = Vec::with_capacity(free_cols.len());
        for &free in &free_cols {
            let mut v = BitVec::zeros(self.num_cols);
            v.set(free, true);
            // Back-substitute: pivot variable value = entry of reduced row at `free`.
            for (row_idx, &pivot_col) in pivots.iter().enumerate() {
                if reduced.rows[row_idx].get(free) {
                    v.set(pivot_col, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Solves `A x = b`, returning one solution if it exists.
    ///
    /// # Errors
    ///
    /// Returns [`PauliError::DimensionMismatch`] if `b.len() != num_rows()`
    /// and [`PauliError::NoSolution`] if the system is inconsistent.
    pub fn solve(&self, b: &BitVec) -> Result<BitVec, PauliError> {
        if b.len() != self.num_rows() {
            return Err(PauliError::DimensionMismatch {
                context: format!("rhs length {} but matrix has {} rows", b.len(), self.num_rows()),
            });
        }
        // Augment with b as an extra column and reduce.
        let mut aug = BinMatrix::zeros(self.num_rows(), self.num_cols + 1);
        for i in 0..self.num_rows() {
            for j in self.rows[i].ones() {
                aug.set(i, j, true);
            }
            if b.get(i) {
                aug.set(i, self.num_cols, true);
            }
        }
        let pivots = aug.row_reduce();
        if pivots.contains(&self.num_cols) {
            return Err(PauliError::NoSolution);
        }
        let mut x = BitVec::zeros(self.num_cols);
        for (row_idx, &pivot_col) in pivots.iter().enumerate() {
            if aug.rows[row_idx].get(self.num_cols) {
                x.set(pivot_col, true);
            }
        }
        Ok(x)
    }

    /// The inverse of a square, invertible matrix.
    ///
    /// # Errors
    ///
    /// Returns [`PauliError::DimensionMismatch`] if the matrix is not square
    /// and [`PauliError::NoSolution`] if it is singular.
    pub fn inverse(&self) -> Result<BinMatrix, PauliError> {
        if self.num_rows() != self.num_cols {
            return Err(PauliError::DimensionMismatch {
                context: format!("cannot invert {}x{} matrix", self.num_rows(), self.num_cols),
            });
        }
        let n = self.num_cols;
        let mut aug = self.hstack(&BinMatrix::identity(n));
        let pivots = aug.row_reduce();
        // Invertible iff the pivots are exactly the first n columns.
        if pivots.len() != n || pivots.iter().enumerate().any(|(i, &p)| p != i) {
            return Err(PauliError::NoSolution);
        }
        let mut inv = BinMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if aug.get(i, n + j) {
                    inv.set(i, j, true);
                }
            }
        }
        Ok(inv)
    }

    /// Whether the given vector is in the row space of the matrix.
    pub fn row_space_contains(&self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.num_cols, "vector length mismatch in row_space_contains");
        self.transpose().solve(v).is_ok()
    }

    /// Reduces `v` against the row space (returns the canonical coset
    /// representative after eliminating with the matrix's reduced rows).
    ///
    /// The matrix is first row-reduced internally; the result is zero exactly
    /// when `v` lies in the row space.
    pub fn reduce_vector(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.num_cols, "vector length mismatch in reduce_vector");
        let mut reduced = self.clone();
        let pivots = reduced.row_reduce();
        let mut out = v.clone();
        for (row_idx, &pivot_col) in pivots.iter().enumerate() {
            if out.get(pivot_col) {
                out.xor_with(&reduced.rows[row_idx]);
            }
        }
        out
    }
}

impl fmt::Debug for BinMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BinMatrix({}x{}) [", self.num_rows(), self.num_cols)?;
        for row in &self.rows {
            write!(f, "  ")?;
            for j in 0..self.num_cols {
                write!(f, "{}", if row.get(j) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> BinMatrix {
        BinMatrix::from_dense(&[&[1, 1, 0, 0], &[0, 1, 1, 0], &[1, 0, 1, 0]])
    }

    #[test]
    fn rank_and_reduce() {
        let m = example();
        assert_eq!(m.rank(), 2); // third row is sum of the first two
        let mut r = m.clone();
        let pivots = r.row_reduce();
        assert_eq!(pivots, vec![0, 1]);
    }

    #[test]
    fn kernel_is_annihilated() {
        let m = example();
        for v in m.kernel_basis() {
            assert!(!m.mul_vec(&v).any(), "kernel vector not annihilated");
        }
        // kernel dimension = cols - rank = 4 - 2 = 2
        assert_eq!(m.kernel_basis().len(), 2);
    }

    #[test]
    fn solve_consistent_and_inconsistent() {
        let m = BinMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1]]);
        let b = BitVec::from_indices(2, &[0]);
        let x = m.solve(&b).unwrap();
        assert_eq!(m.mul_vec(&x), b);

        let singular = BinMatrix::from_dense(&[&[1, 1, 0], &[1, 1, 0]]);
        let bad = BitVec::from_indices(2, &[0]);
        assert_eq!(singular.solve(&bad), Err(PauliError::NoSolution));
    }

    #[test]
    fn transpose_and_mul() {
        let m = BinMatrix::from_dense(&[&[1, 0, 1], &[0, 1, 1]]);
        let t = m.transpose();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        let prod = m.mul(&t);
        // M Mᵀ = [[0, 1], [1, 0]] over GF(2)
        assert!(!prod.get(0, 0));
        assert!(prod.get(0, 1));
        assert!(prod.get(1, 0));
        assert!(!prod.get(1, 1));
    }

    #[test]
    fn identity_behaves() {
        let i = BinMatrix::identity(5);
        assert_eq!(i.rank(), 5);
        let v = BitVec::from_indices(5, &[1, 3]);
        assert_eq!(i.mul_vec(&v), v);
    }

    #[test]
    fn stack_shapes() {
        let a = BinMatrix::zeros(2, 3);
        let b = BinMatrix::identity(2);
        let h = a.hstack(&b);
        assert_eq!((h.num_rows(), h.num_cols()), (2, 5));
        let c = BinMatrix::zeros(1, 3);
        let v = a.vstack(&c);
        assert_eq!((v.num_rows(), v.num_cols()), (3, 3));
    }

    #[test]
    fn row_space_membership() {
        let m = example();
        let in_space = BitVec::from_indices(4, &[0, 2]); // row0 + row1
        let out_space = BitVec::from_indices(4, &[3]);
        assert!(m.row_space_contains(&in_space));
        assert!(!m.row_space_contains(&out_space));
        assert!(!m.reduce_vector(&in_space).any());
        assert!(m.reduce_vector(&out_space).any());
    }

    #[test]
    fn inverse_roundtrip() {
        let m = BinMatrix::from_dense(&[&[1, 1, 0], &[0, 1, 1], &[0, 0, 1]]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul(&inv), BinMatrix::identity(3));
        assert_eq!(inv.mul(&m), BinMatrix::identity(3));

        let singular = BinMatrix::from_dense(&[&[1, 1], &[1, 1]]);
        assert!(singular.inverse().is_err());
        let rect = BinMatrix::zeros(2, 3);
        assert!(rect.inverse().is_err());
    }

    #[test]
    fn from_row_supports_matches_dense() {
        let a = BinMatrix::from_row_supports(4, &[vec![0, 2], vec![1]]);
        let b = BinMatrix::from_dense(&[&[1, 0, 1, 0], &[0, 1, 0, 0]]);
        assert_eq!(a, b);
    }
}

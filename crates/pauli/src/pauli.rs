//! Single-qubit Pauli operators modulo global phase.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::PauliError;

/// A single-qubit Pauli operator, ignoring global phase.
///
/// The group structure used throughout the workspace is the projective Pauli
/// group `{I, X, Y, Z}` under multiplication with phases discarded, which is
/// what matters for error propagation, syndrome extraction and decoding.
///
/// # Example
///
/// ```
/// use asynd_pauli::Pauli;
///
/// assert_eq!(Pauli::X * Pauli::Z, Pauli::Y);
/// assert!(Pauli::X.anticommutes_with(Pauli::Z));
/// assert!(Pauli::X.commutes_with(Pauli::I));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub enum Pauli {
    /// The identity.
    #[default]
    I,
    /// Pauli X (bit flip).
    X,
    /// Pauli Y (= iXZ, both bit and phase flip).
    Y,
    /// Pauli Z (phase flip).
    Z,
}

impl Pauli {
    /// All four Pauli operators in canonical order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Pauli operators.
    pub const ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns the (x, z) symplectic component pair of this Pauli.
    ///
    /// `X ↦ (true, false)`, `Z ↦ (false, true)`, `Y ↦ (true, true)`,
    /// `I ↦ (false, false)`.
    #[inline]
    pub fn xz(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Builds a Pauli from its symplectic components.
    #[inline]
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Whether this Pauli has an X component (i.e. is `X` or `Y`).
    #[inline]
    pub fn has_x(self) -> bool {
        self.xz().0
    }

    /// Whether this Pauli has a Z component (i.e. is `Z` or `Y`).
    #[inline]
    pub fn has_z(self) -> bool {
        self.xz().1
    }

    /// Whether this is the identity.
    #[inline]
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// Whether two single-qubit Paulis commute.
    ///
    /// Two non-identity Paulis commute exactly when they are equal.
    #[inline]
    pub fn commutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        // Symplectic form: <P, Q> = x1 z2 + z1 x2 (mod 2); commute iff 0.
        (x1 & z2) == (z1 & x2)
    }

    /// Whether two single-qubit Paulis anticommute.
    #[inline]
    pub fn anticommutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.xz();
        let (x2, z2) = other.xz();
        (x1 & z2) ^ (z1 & x2)
    }

    /// Parses a single character into a Pauli. Accepts upper/lower case and
    /// `_` as an alias of identity.
    pub fn from_char(c: char) -> Result<Pauli, PauliError> {
        match c.to_ascii_uppercase() {
            'I' | '_' => Ok(Pauli::I),
            'X' => Ok(Pauli::X),
            'Y' => Ok(Pauli::Y),
            'Z' => Ok(Pauli::Z),
            other => Err(PauliError::InvalidCharacter { character: other, position: 0 }),
        }
    }

    /// Returns the canonical uppercase character of the Pauli.
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl std::ops::Mul for Pauli {
    type Output = Pauli;

    /// Multiplication in the projective Pauli group (phases discarded).
    fn mul(self, rhs: Pauli) -> Pauli {
        let (x1, z1) = self.xz();
        let (x2, z2) = rhs.xz();
        Pauli::from_xz(x1 ^ x2, z1 ^ z2)
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_table() {
        use Pauli::*;
        assert_eq!(X * X, I);
        assert_eq!(Y * Y, I);
        assert_eq!(Z * Z, I);
        assert_eq!(X * Z, Y);
        assert_eq!(Z * X, Y);
        assert_eq!(X * Y, Z);
        assert_eq!(Y * Z, X);
        for p in Pauli::ALL {
            assert_eq!(p * I, p);
            assert_eq!(I * p, p);
        }
    }

    #[test]
    fn commutation() {
        use Pauli::*;
        assert!(X.commutes_with(X));
        assert!(X.anticommutes_with(Z));
        assert!(X.anticommutes_with(Y));
        assert!(Y.anticommutes_with(Z));
        for p in Pauli::ALL {
            assert!(p.commutes_with(I));
            assert!(p.commutes_with(p));
        }
    }

    #[test]
    fn char_roundtrip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_char(p.to_char()).unwrap(), p);
            assert_eq!(Pauli::from_char(p.to_char().to_ascii_lowercase()).unwrap(), p);
        }
        assert_eq!(Pauli::from_char('_').unwrap(), Pauli::I);
        assert!(Pauli::from_char('Q').is_err());
    }

    #[test]
    fn xz_roundtrip() {
        for p in Pauli::ALL {
            let (x, z) = p.xz();
            assert_eq!(Pauli::from_xz(x, z), p);
        }
    }

    #[test]
    fn display_matches_char() {
        assert_eq!(Pauli::Y.to_string(), "Y");
    }
}

//! Symplectic linear algebra over GF(2): extracting logical operator pairs
//! from a set of commuting stabilizer generators.

use crate::{BinMatrix, BitVec, PauliError, PauliString};

/// The paired logical operators of a stabilizer code, as computed by
/// [`symplectic_complement_pairs`].
///
/// `logical_x[i]` anticommutes with `logical_z[i]`, commutes with every
/// other logical operator in the struct, and commutes with every stabilizer
/// generator it was derived from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymplecticPairing {
    /// Representatives of the logical X operators, one per logical qubit.
    pub logical_x: Vec<PauliString>,
    /// Representatives of the logical Z operators, one per logical qubit.
    pub logical_z: Vec<PauliString>,
}

impl SymplecticPairing {
    /// Number of logical qubits in the pairing.
    pub fn num_logicals(&self) -> usize {
        self.logical_x.len()
    }
}

/// Converts a Pauli operator to its `(x | z)` symplectic vector of length
/// `2n`.
fn to_symplectic_vec(p: &PauliString) -> BitVec {
    let n = p.num_qubits();
    let mut v = BitVec::zeros(2 * n);
    for q in 0..n {
        let (x, z) = p.get(q).xz();
        if x {
            v.set(q, true);
        }
        if z {
            v.set(n + q, true);
        }
    }
    v
}

/// Converts a `(x | z)` symplectic vector back to a Pauli operator.
fn from_symplectic_vec(v: &BitVec) -> PauliString {
    let n = v.len() / 2;
    let mut p = PauliString::identity(n);
    for q in 0..n {
        p.set(q, crate::Pauli::from_xz(v.get(q), v.get(n + q)));
    }
    p
}

/// Symplectic inner product of two `(x | z)` vectors: `x_a·z_b + z_a·x_b`.
fn symplectic_product(a: &BitVec, b: &BitVec) -> bool {
    let n = a.len() / 2;
    debug_assert_eq!(a.len(), b.len());
    let mut acc = false;
    for q in 0..n {
        acc ^= a.get(q) & b.get(n + q);
        acc ^= a.get(n + q) & b.get(q);
    }
    acc
}

/// Computes paired logical X/Z operators for a set of mutually commuting
/// stabilizer generators on `n` qubits.
///
/// The generators need not be independent; the function works with the span.
/// If the span has rank `r`, the code encodes `k = n - r` logical qubits and
/// the result contains `k` symplectically paired logical operators.
///
/// This is the fully general construction (it does not assume a CSS code),
/// used for codes like XZZX whose stabilizers mix X and Z on the same qubit.
///
/// # Errors
///
/// Returns [`PauliError::DimensionMismatch`] if the generators act on
/// different register sizes or any pair of generators anticommutes.
///
/// # Example
///
/// ```
/// use asynd_pauli::{symplectic_complement_pairs, PauliString};
///
/// // The [[2, 1]] repetition-style code stabilized by ZZ.
/// let stabs = vec![PauliString::from_str("ZZ").unwrap()];
/// let pairing = symplectic_complement_pairs(&stabs).unwrap();
/// assert_eq!(pairing.num_logicals(), 1);
/// assert!(pairing.logical_x[0].anticommutes_with(&pairing.logical_z[0]));
/// for s in &stabs {
///     assert!(pairing.logical_x[0].commutes_with(s));
///     assert!(pairing.logical_z[0].commutes_with(s));
/// }
/// ```
pub fn symplectic_complement_pairs(
    stabilizers: &[PauliString],
) -> Result<SymplecticPairing, PauliError> {
    let Some(first) = stabilizers.first() else {
        return Ok(SymplecticPairing { logical_x: Vec::new(), logical_z: Vec::new() });
    };
    let n = first.num_qubits();
    for s in stabilizers {
        if s.num_qubits() != n {
            return Err(PauliError::LengthMismatch { left: n, right: s.num_qubits() });
        }
    }
    for (i, a) in stabilizers.iter().enumerate() {
        for b in &stabilizers[i + 1..] {
            if a.anticommutes_with(b) {
                return Err(PauliError::DimensionMismatch {
                    context: "stabilizer generators must mutually commute".to_string(),
                });
            }
        }
    }

    // Stabilizer matrix S (rows are (x|z) vectors).
    let s_rows: Vec<BitVec> = stabilizers.iter().map(to_symplectic_vec).collect();
    let s_mat = BinMatrix::from_rows(s_rows);

    // Centralizer of S: vectors v with symplectic product zero against every
    // row, i.e. kernel of the "twisted" matrix whose rows are (z|x).
    let twisted_rows: Vec<BitVec> = stabilizers
        .iter()
        .map(|p| {
            let v = to_symplectic_vec(p);
            let mut t = BitVec::zeros(2 * n);
            for q in 0..n {
                if v.get(n + q) {
                    t.set(q, true);
                }
                if v.get(q) {
                    t.set(n + q, true);
                }
            }
            t
        })
        .collect();
    let twisted = BinMatrix::from_rows(twisted_rows);
    let centralizer = twisted.kernel_basis();

    // Quotient the centralizer by the stabilizer row space: keep vectors that
    // remain independent after reducing by S and by previously kept vectors.
    let mut quotient_basis: Vec<BitVec> = Vec::new();
    let mut reducer = s_mat.clone();
    for v in centralizer {
        let reduced = reducer.reduce_vector(&v);
        if reduced.any() {
            quotient_basis.push(reduced.clone());
            reducer.push_row(reduced);
        }
    }

    // Symplectic Gram-Schmidt pairing of the 2k quotient representatives.
    let mut pool = quotient_basis;
    let mut logical_x = Vec::new();
    let mut logical_z = Vec::new();
    while let Some(a) = pool.pop() {
        let partner_idx = pool.iter().position(|b| symplectic_product(&a, b));
        let Some(idx) = partner_idx else {
            // `a` commutes with everything left: it must be in the span of the
            // stabilizers together with already-paired logicals; drop it.
            continue;
        };
        let b = pool.swap_remove(idx);
        // Make every remaining vector commute with both a and b.
        for c in pool.iter_mut() {
            if symplectic_product(c, &b) {
                c.xor_with(&a);
            }
            if symplectic_product(c, &a) {
                c.xor_with(&b);
            }
        }
        logical_x.push(from_symplectic_vec(&a));
        logical_z.push(from_symplectic_vec(&b));
    }

    Ok(SymplecticPairing { logical_x, logical_z })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_pairing(stabs: &[PauliString], expected_k: usize) -> SymplecticPairing {
        let pairing = symplectic_complement_pairs(stabs).unwrap();
        assert_eq!(pairing.num_logicals(), expected_k, "wrong number of logical qubits");
        for (i, lx) in pairing.logical_x.iter().enumerate() {
            for s in stabs {
                assert!(lx.commutes_with(s), "logical X{i} anticommutes with a stabilizer");
                assert!(
                    pairing.logical_z[i].commutes_with(s),
                    "logical Z{i} anticommutes with a stabilizer"
                );
            }
            for (j, lz) in pairing.logical_z.iter().enumerate() {
                let anti = lx.anticommutes_with(lz);
                assert_eq!(anti, i == j, "pairing structure violated at ({i},{j})");
            }
            for (j, lx2) in pairing.logical_x.iter().enumerate() {
                if i != j {
                    assert!(lx.commutes_with(lx2));
                }
            }
        }
        pairing
    }

    #[test]
    fn five_qubit_code() {
        // The [[5,1,3]] perfect code.
        let stabs: Vec<PauliString> = ["XZZXI", "IXZZX", "XIXZZ", "ZXIXZ"]
            .iter()
            .map(|s| PauliString::from_str(s).unwrap())
            .collect();
        check_pairing(&stabs, 1);
    }

    #[test]
    fn steane_code() {
        let stabs: Vec<PauliString> =
            ["XXXXIII", "XXIIXXI", "XIXIXIX", "ZZZZIII", "ZZIIZZI", "ZIZIZIZ"]
                .iter()
                .map(|s| PauliString::from_str(s).unwrap())
                .collect();
        check_pairing(&stabs, 1);
    }

    #[test]
    fn bell_pair_code() {
        // Two qubits, one stabilizer: one logical qubit.
        let stabs = vec![PauliString::from_str("XX").unwrap()];
        check_pairing(&stabs, 1);
    }

    #[test]
    fn redundant_generators_are_handled() {
        // ZZI, IZZ and their product ZIZ: rank 2 on 3 qubits → k = 1.
        let stabs: Vec<PauliString> =
            ["ZZI", "IZZ", "ZIZ"].iter().map(|s| PauliString::from_str(s).unwrap()).collect();
        check_pairing(&stabs, 1);
    }

    #[test]
    fn anticommuting_generators_rejected() {
        let stabs =
            vec![PauliString::from_str("XI").unwrap(), PauliString::from_str("ZI").unwrap()];
        assert!(symplectic_complement_pairs(&stabs).is_err());
    }

    #[test]
    fn empty_input_gives_empty_pairing() {
        let pairing = symplectic_complement_pairs(&[]).unwrap();
        assert_eq!(pairing.num_logicals(), 0);
    }
}

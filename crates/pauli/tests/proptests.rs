//! Property-based tests for the Pauli and GF(2) algebra substrate.

use asynd_pauli::{BinMatrix, BitVec, Pauli, PauliString, SparsePauli};
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![Just(Pauli::I), Just(Pauli::X), Just(Pauli::Y), Just(Pauli::Z)]
}

fn arb_pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    prop::collection::vec(arb_pauli(), n).prop_map(move |ps| {
        let mut s = PauliString::identity(ps.len());
        for (i, p) in ps.into_iter().enumerate() {
            s.set(i, p);
        }
        s
    })
}

fn arb_binmatrix(rows: usize, cols: usize) -> impl Strategy<Value = BinMatrix> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), cols), rows).prop_map(move |m| {
        let rows: Vec<BitVec> = m.into_iter().map(BitVec::from_bools).collect();
        BinMatrix::from_rows(rows)
    })
}

proptest! {
    #[test]
    fn single_pauli_group_axioms(a in arb_pauli(), b in arb_pauli(), c in arb_pauli()) {
        // Associativity, identity, self-inverse.
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * Pauli::I, a);
        prop_assert_eq!(a * a, Pauli::I);
        // Commutation is symmetric.
        prop_assert_eq!(a.commutes_with(b), b.commutes_with(a));
    }

    #[test]
    fn pauli_string_multiplication_is_abelian_mod_phase(
        a in arb_pauli_string(24),
        b in arb_pauli_string(24),
    ) {
        prop_assert_eq!(a.product(&b), b.product(&a));
        prop_assert!(a.product(&a).is_identity());
    }

    #[test]
    fn commutation_matches_sitewise_count(a in arb_pauli_string(16), b in arb_pauli_string(16)) {
        let anti_sites = (0..16).filter(|&q| a.get(q).anticommutes_with(b.get(q))).count();
        prop_assert_eq!(a.commutes_with(&b), anti_sites % 2 == 0);
    }

    #[test]
    fn sparse_and_dense_agree(a in arb_pauli_string(20), b in arb_pauli_string(20)) {
        let sa: SparsePauli = (&a).into();
        let sb: SparsePauli = (&b).into();
        prop_assert_eq!(sa.commutes_with(&sb), a.commutes_with(&b));
        prop_assert_eq!(sa.product(&sb).to_dense(20), a.product(&b));
        prop_assert_eq!(sa.weight(), a.weight());
    }

    #[test]
    fn display_parse_roundtrip(a in arb_pauli_string(15)) {
        let text = a.to_string();
        let parsed = PauliString::from_str(&text).unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn bitvec_xor_is_involutive(bits in prop::collection::vec(any::<bool>(), 1..200),
                                other in prop::collection::vec(any::<bool>(), 1..200)) {
        let len = bits.len().min(other.len());
        let a = BitVec::from_bools(bits[..len].iter().copied());
        let b = BitVec::from_bools(other[..len].iter().copied());
        let mut c = a.clone();
        c.xor_with(&b);
        c.xor_with(&b);
        prop_assert_eq!(c, a);
    }

    #[test]
    fn kernel_vectors_are_annihilated(m in arb_binmatrix(6, 10)) {
        for v in m.kernel_basis() {
            prop_assert!(!m.mul_vec(&v).any());
        }
        // rank-nullity
        prop_assert_eq!(m.rank() + m.kernel_basis().len(), 10);
    }

    #[test]
    fn solve_returns_valid_solutions(m in arb_binmatrix(7, 9), xs in prop::collection::vec(any::<bool>(), 9)) {
        // Construct a consistent rhs from a known solution.
        let x = BitVec::from_bools(xs);
        let b = m.mul_vec(&x);
        let solved = m.solve(&b).expect("consistent system must be solvable");
        prop_assert_eq!(m.mul_vec(&solved), b);
    }

    #[test]
    fn transpose_is_involutive(m in arb_binmatrix(5, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn rank_invariant_under_transpose(m in arb_binmatrix(6, 6)) {
        prop_assert_eq!(m.rank(), m.transpose().rank());
    }
}

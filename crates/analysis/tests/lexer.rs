//! Lexer unit tests: strings, raw strings, comments, lifetimes, depth
//! tracking — the edge cases a token-level analyzer lives or dies by.

use asynd_analysis::lexer::{lex, Delim, TokenKind};

fn idents(source: &str) -> Vec<String> {
    lex(source).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
}

#[test]
fn strings_hide_their_contents_from_the_token_stream() {
    // Nothing inside a string literal may surface as an identifier —
    // otherwise every diagnostic message mentioning `unwrap` would trip
    // the panic rule.
    let src = r#"fn f() { let s = "unwrap panic! HashMap .lock()"; }"#;
    let names = idents(src);
    assert!(names.contains(&"f".to_string()));
    assert!(!names.contains(&"unwrap".to_string()));
    assert!(!names.contains(&"HashMap".to_string()));
}

#[test]
fn escaped_quotes_do_not_end_the_string() {
    let src = r#"let a = "say \"unwrap\" twice"; let b = unwrap;"#;
    let names = idents(src);
    assert_eq!(names.iter().filter(|n| *n == "unwrap").count(), 1, "only the real ident counts");
}

#[test]
fn raw_strings_with_hashes_are_opaque() {
    let src = r###"let re = r#"lock() "quoted" unwrap()"#; let x = after;"###;
    let names = idents(src);
    assert!(!names.contains(&"lock".to_string()));
    assert!(names.contains(&"after".to_string()));
}

#[test]
fn char_literals_are_not_lifetimes() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
    let lexed = lex(src);
    let lifetimes: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["a", "a"], "only the generic lifetime, not the chars");
}

#[test]
fn line_and_block_comments_are_collected_separately() {
    let src = "// first\n// second\nfn f() { /* inner\nblock */ let x = 1; } // trailing\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 4);
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("first")), "comment text is not tokens");
    // Both the inline block comment and the end-of-line comment sit
    // after code on their line, so both count as trailing.
    let trailing: Vec<_> = lexed.comments.iter().filter(|c| c.trailing).collect();
    assert_eq!(trailing.len(), 2);
    assert!(trailing.iter().any(|c| c.text.contains("trailing")));
    let block = lexed.comments.iter().find(|c| c.text.contains("block")).unwrap();
    assert_eq!((block.line, block.end_line), (3, 4), "block comments span lines");
}

#[test]
fn nested_block_comments_terminate_correctly() {
    let src = "/* outer /* inner */ still comment */ fn real() {}";
    let names = idents(src);
    assert_eq!(names, ["fn", "real"].map(String::from).to_vec());
}

#[test]
fn brace_and_paren_depths_nest() {
    let src = "fn f() { if x { g(h(1)); } }";
    let lexed = lex(src);
    let g = lexed.tokens.iter().find(|t| t.is_ident("g")).unwrap();
    let h = lexed.tokens.iter().find(|t| t.is_ident("h")).unwrap();
    assert_eq!(g.brace_depth, 2, "inside fn body and if body");
    assert_eq!(g.paren_depth, 0);
    assert_eq!(h.paren_depth, 1, "inside g's argument list");
    let closes: Vec<_> =
        lexed.tokens.iter().filter(|t| t.kind == TokenKind::Close(Delim::Brace)).collect();
    assert_eq!(closes.last().unwrap().brace_depth, 0, "final close returns to top level");
}

#[test]
fn nested_generics_are_plain_puncts_not_shifts() {
    let src = "let m: HashMap<String, Vec<Option<u8>>> = HashMap::new();";
    let lexed = lex(src);
    assert!(lexed.tokens.iter().any(|t| t.is_ident("HashMap")));
    assert!(lexed.tokens.iter().any(|t| t.is_ident("Option")));
    // `>>` must lex as two puncts (or equivalent), never swallow the
    // following `=`.
    assert!(lexed.tokens.iter().any(|t| t.is_punct('=')));
}

#[test]
fn number_ranges_do_not_merge() {
    let src = "for i in 0..10 { }";
    let lexed = lex(src);
    let numbers: Vec<&str> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Number)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(numbers, ["0", "10"]);
}

#[test]
fn line_and_col_are_one_based_and_accurate() {
    let src = "fn a() {}\nfn bee() {}\n";
    let lexed = lex(src);
    let bee = lexed.tokens.iter().find(|t| t.is_ident("bee")).unwrap();
    assert_eq!((bee.line, bee.col), (2, 4));
}

// Fixture: hash iteration that is fine — either outside any canonical
// root, or visibly re-ordered before it can leak into output.
use std::collections::HashMap;

pub struct Tally {
    entries: HashMap<String, u64>,
}

impl Tally {
    // Not a canonical root and not reachable from one: iteration order
    // never leaves the function.
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        for (_, count) in &self.entries {
            sum += count;
        }
        sum
    }

    // A canonical root, but the iteration is sorted before use.
    pub fn canonical_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }
}

// Fixture: an unsafe block with no justification anywhere near it.

pub fn peek(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() }
}

// Fixture: an unchecked narrowing cast of a length near frame encoding.

pub fn encode_header(payload: &[u8], out: &mut Vec<u8>) {
    out.push(0xA5);
    let declared = payload.len() as u32;
    out.extend_from_slice(&declared.to_le_bytes());
}

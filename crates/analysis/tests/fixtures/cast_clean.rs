// Fixture: narrowing that is fine — checked conversion for lengths, and
// raw `as` casts on values that are not lengths.

pub fn encode_header(payload: &[u8], out: &mut Vec<u8>) -> Result<(), ()> {
    out.push(0xA5);
    let declared = u32::try_from(payload.len()).map_err(|_| ())?;
    out.extend_from_slice(&declared.to_le_bytes());
    Ok(())
}

pub fn kind_byte(kind: u64) -> u8 {
    (kind & 0xff) as u8
}

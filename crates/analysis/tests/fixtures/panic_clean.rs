// Fixture: hot-path code that handles peer input gracefully — `.get()`
// access, combinator fallbacks, a reasoned suppression, and indexing on
// a local (non-protocol) name.

pub fn parse_header(payload: &[u8]) -> Option<(u8, u8)> {
    let kind = payload.first().copied()?;
    let flags = payload.get(1).copied().unwrap_or_default();
    Some((kind, flags))
}

pub fn checksum(payload: &[u8]) -> u8 {
    let table = [0u8, 1, 2, 3];
    let mut acc = 0u8;
    for &b in payload {
        acc ^= table[(b & 3) as usize];
    }
    acc
}

pub fn first_settled(payload: &[u8]) -> u8 {
    payload.first().copied().unwrap() // asynd-lint: allow(panic-in-hot-path) -- caller length-checked this buffer one line up
}

// Fixture: wall-clock reads in benchmark timing are fine — they never
// reach a canonical/fingerprint path.
use std::time::Instant;

pub fn measure_latency(iterations: u32) -> f64 {
    let started = Instant::now();
    let mut x = 0u64;
    for i in 0..iterations {
        x = x.wrapping_add(i as u64);
    }
    started.elapsed().as_secs_f64()
}

pub fn fingerprint_data(data: &[u8]) -> u64 {
    let mut acc = 0xcbf29ce484222325;
    for &b in data {
        acc = (acc ^ b as u64).wrapping_mul(0x100000001b3);
    }
    acc
}

// Fixture: parsed under a hot path (crates/net/src/...), so unwraps,
// panics and protocol-input indexing are all peer-triggerable crashes.

pub fn parse_header(payload: &[u8]) -> (u8, u8) {
    let kind = payload[0];
    let flags = payload.get(1).copied().unwrap();
    if kind == 0 {
        panic!("zero kind");
    }
    (kind, flags)
}

// Fixture: a wall-clock read inside a fingerprint computation.
use std::time::Instant;

pub fn fingerprint_run(data: &[u8]) -> u64 {
    let stamp = Instant::now();
    let mut acc = stamp.elapsed().as_nanos() as u64;
    for &b in data {
        acc = acc.wrapping_mul(31).wrapping_add(b as u64);
    }
    acc
}

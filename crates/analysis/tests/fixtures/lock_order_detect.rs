// Fixture: two functions acquire the same pair of mutexes in opposite
// orders — the classic deadlock recipe.
use std::sync::Mutex;

pub struct Shared {
    alpha: Mutex<Vec<u64>>,
    beta: Mutex<Vec<u64>>,
}

impl Shared {
    pub fn transfer(&self) {
        let src = self.alpha.lock().expect("poisoned");
        let dst = self.beta.lock().expect("poisoned");
        drop((src, dst));
    }

    pub fn reconcile(&self) {
        let dst = self.beta.lock().expect("poisoned");
        let src = self.alpha.lock().expect("poisoned");
        drop((dst, src));
    }
}

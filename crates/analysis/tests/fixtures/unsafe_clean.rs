// Fixture: justified unsafe — a multi-line SAFETY comment directly
// above, and a trailing one on the same line.

pub fn peek(bytes: &[u8]) -> u8 {
    // SAFETY: callers guarantee `bytes` is non-empty, so the pointer
    // read stays within the allocation.
    unsafe { *bytes.as_ptr() }
}

pub fn peek_trailing(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() } // SAFETY: checked non-empty by the caller
}

// Fixture: HashMap iteration inside a canonical-output root.
use std::collections::HashMap;

pub struct Report {
    entries: HashMap<String, u64>,
}

impl Report {
    pub fn canonical_report(&self) -> String {
        let mut out = String::new();
        for (name, count) in &self.entries {
            out.push_str(name);
            out.push_str(&count.to_string());
        }
        out
    }
}

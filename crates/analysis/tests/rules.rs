//! Fixture-driven rule tests: every rule gets at least one detection
//! (true positive) and one non-detection (false-positive guard), driven
//! by real Rust sources under `tests/fixtures/`.

use asynd_analysis::{analyze, Finding, SourceFile};

/// Parses one fixture as if it lived at `path` in crate `krate`.
fn fixture(name: &str, path: &str, krate: &str) -> SourceFile {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let source =
        std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    SourceFile::parse(path, krate, &source)
}

/// Runs the full pipeline on one fixture and keeps only `rule` findings.
fn findings_for(rule: &str, name: &str, path: &str, krate: &str) -> Vec<Finding> {
    analyze(&[fixture(name, path, krate)]).into_iter().filter(|f| f.rule == rule).collect()
}

fn unsuppressed(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| f.suppressed.is_none()).count()
}

// ---- nondet-iteration --------------------------------------------------

#[test]
fn nondet_iteration_detects_hash_iteration_in_canonical_root() {
    let found =
        findings_for("nondet-iteration", "nondet_detect.rs", "crates/demo/src/report.rs", "demo");
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].function, "canonical_report");
    assert!(found[0].message.contains("entries"));
}

#[test]
fn nondet_iteration_ignores_noncanonical_and_sorted_uses() {
    let found =
        findings_for("nondet-iteration", "nondet_clean.rs", "crates/demo/src/tally.rs", "demo");
    assert!(found.is_empty(), "{found:?}");
}

// ---- wall-clock-in-canonical -------------------------------------------

#[test]
fn wall_clock_detects_instant_now_in_fingerprint_path() {
    let found = findings_for(
        "wall-clock-in-canonical",
        "wall_clock_detect.rs",
        "crates/demo/src/fp.rs",
        "demo",
    );
    assert!(!found.is_empty(), "expected a finding");
    assert_eq!(found[0].function, "fingerprint_run");
}

#[test]
fn wall_clock_ignores_benchmark_timing() {
    let found = findings_for(
        "wall-clock-in-canonical",
        "wall_clock_clean.rs",
        "crates/demo/src/bench.rs",
        "demo",
    );
    assert!(found.is_empty(), "{found:?}");
}

// ---- lock-order --------------------------------------------------------

#[test]
fn lock_order_detects_inverted_acquisition() {
    let found =
        findings_for("lock-order", "lock_order_detect.rs", "crates/demo/src/shared.rs", "demo");
    assert!(!found.is_empty(), "expected a finding");
    // One direction is flagged, and the note names the conflicting site
    // so the reader sees both halves of the inversion.
    let flagged = &found[0];
    assert!(matches!(flagged.function.as_str(), "transfer" | "reconcile"), "{found:?}");
    let other = if flagged.function == "transfer" { "reconcile" } else { "transfer" };
    assert!(
        flagged.note.as_deref().is_some_and(|n| n.contains(other)),
        "note names the conflicting site: {found:?}"
    );
}

#[test]
fn lock_order_accepts_consistent_acquisition() {
    let found =
        findings_for("lock-order", "lock_order_clean.rs", "crates/demo/src/shared.rs", "demo");
    assert!(found.is_empty(), "{found:?}");
}

// ---- unsafe-without-safety ---------------------------------------------

#[test]
fn unsafe_detects_unjustified_block() {
    let found =
        findings_for("unsafe-without-safety", "unsafe_detect.rs", "crates/demo/src/ptr.rs", "demo");
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].function, "peek");
}

#[test]
fn unsafe_accepts_safety_comments_above_and_trailing() {
    let found =
        findings_for("unsafe-without-safety", "unsafe_clean.rs", "crates/demo/src/ptr.rs", "demo");
    assert!(found.is_empty(), "{found:?}");
}

// ---- panic-in-hot-path -------------------------------------------------

#[test]
fn panic_detects_unwrap_panic_and_indexing_in_hot_file() {
    let found =
        findings_for("panic-in-hot-path", "panic_detect.rs", "crates/net/src/conn.rs", "asynd-net");
    let kinds: Vec<&str> = found.iter().map(|f| f.message.as_str()).collect();
    assert!(found.len() >= 3, "indexing + unwrap + panic!: {kinds:?}");
    assert!(kinds.iter().any(|m| m.contains("unwrap")), "{kinds:?}");
    assert!(kinds.iter().any(|m| m.contains("panic")), "{kinds:?}");
    assert!(kinds.iter().any(|m| m.contains("index")), "{kinds:?}");
}

#[test]
fn panic_rule_is_scoped_to_hot_files() {
    // The same crash-happy source outside the serving hot set is not
    // this rule's business.
    let found = findings_for(
        "panic-in-hot-path",
        "panic_detect.rs",
        "crates/circuit/src/eval.rs",
        "asynd-circuit",
    );
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn panic_clean_patterns_and_suppressions_pass() {
    let found =
        findings_for("panic-in-hot-path", "panic_clean.rs", "crates/net/src/conn.rs", "asynd-net");
    assert_eq!(unsuppressed(&found), 0, "{found:?}");
    // The reasoned allow is recorded, not silently dropped.
    assert_eq!(found.iter().filter(|f| f.suppressed.is_some()).count(), 1, "{found:?}");
}

// ---- cast-truncation ---------------------------------------------------

#[test]
fn cast_truncation_detects_unchecked_length_narrowing() {
    let found =
        findings_for("cast-truncation", "cast_detect.rs", "crates/demo/src/codec.rs", "demo");
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].function, "encode_header");
}

#[test]
fn cast_truncation_accepts_checked_conversion_and_nonlength_casts() {
    let found =
        findings_for("cast-truncation", "cast_clean.rs", "crates/demo/src/codec.rs", "demo");
    assert!(found.is_empty(), "{found:?}");
}

// ---- cross-cutting: suppression hygiene --------------------------------

#[test]
fn reasonless_suppression_markers_are_inert() {
    // `allow(...)` without `-- reason` must not suppress anything.
    let src = "pub fn peek(bytes: &[u8]) -> u8 {\n    \
               unsafe { *bytes.as_ptr() } // asynd-lint: allow(unsafe-without-safety)\n}\n";
    let file = SourceFile::parse("crates/demo/src/ptr.rs", "demo", src);
    let found: Vec<Finding> =
        analyze(&[file]).into_iter().filter(|f| f.rule == "unsafe-without-safety").collect();
    assert_eq!(found.len(), 1);
    assert!(found[0].suppressed.is_none(), "no reason, no suppression: {found:?}");
}

#[test]
fn standalone_suppression_covers_the_next_code_line() {
    let src = "pub fn f(m: &std::collections::HashMap<String, u64>) -> String {\n    \
               let mut out = String::new();\n    \
               // asynd-lint: allow(nondet-iteration) -- demo of standalone coverage\n    \
               for (k, _) in m {\n        out.push_str(k);\n    }\n    out\n}\n\
               pub fn canonical_wrap(m: &std::collections::HashMap<String, u64>) -> String { f(m) }\n";
    let file = SourceFile::parse("crates/demo/src/sup.rs", "demo", src);
    let found: Vec<Finding> =
        analyze(&[file]).into_iter().filter(|f| f.rule == "nondet-iteration").collect();
    assert_eq!(found.len(), 1, "{found:?}");
    assert!(found[0].suppressed.is_some(), "standalone allow covers the for line: {found:?}");
}

//! The dogfood gate as a test: the real workspace this crate ships in
//! must lint clean — zero unsuppressed findings, and zero baseline
//! reliance in the serving crates the paper's claims rest on.

use asynd_analysis::{analyze, scan_workspace, Baseline};

#[test]
fn workspace_lints_clean_with_an_empty_baseline() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = scan_workspace(&root).expect("workspace scan");
    assert!(files.len() > 10, "sanity: the scan found the workspace");
    let findings = analyze(&files);
    let fresh: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        fresh.is_empty(),
        "unsuppressed findings crept in:\n{}",
        asynd_analysis::render_text(&findings, false)
    );
    // The checked-in baseline stays empty: no crate gets legacy debt.
    let baseline = Baseline::load(&root.join("lint-baseline.json")).expect("baseline parses");
    assert!(baseline.is_empty(), "the shipped baseline must stay empty");
    for prefix in ["crates/server/", "crates/net/", "crates/telemetry/", "crates/registry/"] {
        let granted = baseline.entries_under(prefix);
        assert!(granted.is_empty(), "zero-baseline contract broken for {prefix}: {granted:?}");
    }
}

//! Rule 2 — `wall-clock-in-canonical`.
//!
//! Canonical reports and fingerprints must hash/compare bit-identically
//! across runs and machines, so nothing in their call closure may read
//! the wall clock or a monotonic timer. This is exactly the bug class
//! `canonical_report_value` exists to strip after the fact — the rule
//! stops new reads from being introduced upstream of it. Roots are
//! fingerprint/canonical/report-named functions; the closure is the
//! same name-merged reachability the nondet-iteration rule uses.

use super::{closure_from_roots, Finding, Rule, Severity};
use crate::lexer::{Delim, TokenKind};
use crate::model::SourceFile;

/// Whether a function name marks a canonical-report / fingerprint root.
///
/// Deliberately narrower than the nondet-iteration roots: benchmark
/// reports *measure* wall time by design, and `canonical_report_value`
/// strips those fields before comparison. What must never read a clock
/// is the canonicalisation and fingerprinting machinery itself — the
/// code whose output is hashed or compared bit-for-bit.
pub fn is_canonical_report_root(name: &str) -> bool {
    name.contains("fingerprint") || name.contains("canonical")
}

pub struct WallClockInCanonical;

impl Rule for WallClockInCanonical {
    fn name(&self) -> &'static str {
        "wall-clock-in-canonical"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, files: &[SourceFile], out: &mut Vec<Finding>) {
        let closure = closure_from_roots(files, &is_canonical_report_root);
        for file in files {
            let toks = &file.tokens;
            for func in file.functions.iter().filter(|f| !f.is_test) {
                if !closure.contains(&func.name) {
                    continue;
                }
                for i in func.body.clone() {
                    let tok = &toks[i];
                    if tok.kind != TokenKind::Ident {
                        continue;
                    }
                    // `Instant::now(` / `SystemTime::now(` — the type
                    // name followed by `::now(`.
                    let clock_type = tok.is_ident("Instant") || tok.is_ident("SystemTime");
                    let source = if clock_type
                        && toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                        && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false)
                        && toks.get(i + 3).map(|t| t.is_ident("now")).unwrap_or(false)
                    {
                        format!("{}::now()", tok.text)
                    } else if tok.is_ident("UNIX_EPOCH")
                        || (tok.is_ident("duration_since")
                            && toks.get(i + 1).map(|t| t.kind)
                                == Some(TokenKind::Open(Delim::Paren)))
                    {
                        tok.text.clone()
                    } else {
                        continue;
                    };
                    out.push(Finding {
                        rule: self.name(),
                        severity: self.severity(),
                        file: file.path.clone(),
                        line: tok.line,
                        col: tok.col,
                        function: func.name.clone(),
                        message: format!(
                            "wall-clock read `{}` inside `{}`, which is reachable from a canonical-report/fingerprint root",
                            source, func.name
                        ),
                        note: Some(
                            "canonical output must be time-independent; take timestamps outside the canonical path and strip them before hashing"
                                .to_string(),
                        ),
                        suppressed: None,
                        baselined: false,
                    });
                }
            }
        }
    }
}

//! Rule 3 — `lock-order`.
//!
//! Deadlock freedom with plain mutexes is a *global* property: every
//! thread must acquire any pair of locks in the same order. The rule
//! recovers nested acquisitions from token streams: each `.lock()` call
//! opens a guard whose lifetime follows Rust's temporary rules —
//! statement-scoped when the call is a bare expression statement,
//! block-scoped when bound by `let`/`if`/`while`/`match` — and any
//! second `.lock()` inside that scope records an ordered pair
//! (first-receiver, second-receiver). Pairs aggregate per crate into a
//! digraph; the rule flags (a) pairs acquired in both orders at
//! different sites and (b) longer cycles. Receivers are merged by their
//! source chain (`self.slots`, `POOL`, `shards[_]`), so two sites
//! naming the same chain are assumed to name the same lock — and two
//! indexes into one array are indistinguishable, which is why
//! same-chain nesting is not flagged (index-ordered array locking is a
//! legitimate discipline the token level cannot check).

use super::{function_at, in_nontest_function, receiver_chain, Finding, Rule, Severity};
use crate::lexer::{Delim, Token, TokenKind};
use crate::model::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrder;

/// One `.lock()` acquisition site.
struct Acquisition {
    /// Merged receiver chain naming the lock.
    name: String,
    /// Index of the `.` token.
    dot: usize,
    /// Token index where the guard's scope ends (exclusive).
    scope_end: usize,
    line: u32,
    col: u32,
}

/// One nested-acquisition site: (file, line, col, function).
type EdgeSite = (String, u32, u32, String);

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, files: &[SourceFile], out: &mut Vec<Finding>) {
        // Group file indices by crate: the acquisition graph is per
        // crate (locks do not cross crate boundaries by name).
        let mut crates: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, file) in files.iter().enumerate() {
            crates.entry(&file.crate_name).or_default().push(idx);
        }
        for (_crate_name, file_idxs) in crates {
            // (first, second) -> nested-acquisition sites.
            let mut edges: BTreeMap<(String, String), Vec<EdgeSite>> = BTreeMap::new();
            for &fi in &file_idxs {
                let file = &files[fi];
                let acquisitions = find_acquisitions(file);
                for (a_idx, a) in acquisitions.iter().enumerate() {
                    for b in &acquisitions[a_idx + 1..] {
                        if b.dot >= a.scope_end {
                            break;
                        }
                        if a.name == b.name {
                            continue;
                        }
                        edges.entry((a.name.clone(), b.name.clone())).or_default().push((
                            file.path.clone(),
                            b.line,
                            b.col,
                            function_at(file, b.dot),
                        ));
                    }
                }
            }

            // (a) Inconsistent pair orderings: both (A,B) and (B,A)
            // seen. Flag every site of the minority direction (tie:
            // the lexicographically larger first-lock loses).
            let mut flagged_pairs: BTreeSet<(String, String)> = BTreeSet::new();
            for ((a, b), sites) in &edges {
                if a >= b {
                    continue; // visit each unordered pair once, from (min,max)
                }
                let Some(rev_sites) = edges.get(&(b.clone(), a.clone())) else { continue };
                let (loser, loser_sites, witness) = if rev_sites.len() < sites.len() {
                    ((b.clone(), a.clone()), rev_sites, &sites[0])
                } else {
                    ((a.clone(), b.clone()), sites, &rev_sites[0])
                };
                flagged_pairs.insert((a.clone(), b.clone()));
                for (file, line, col, function) in loser_sites {
                    out.push(Finding {
                        rule: self.name(),
                        severity: self.severity(),
                        file: file.clone(),
                        line: *line,
                        col: *col,
                        function: function.clone(),
                        message: format!(
                            "locks `{}` then `{}` — the opposite of the order used elsewhere in this crate",
                            loser.0, loser.1
                        ),
                        note: Some(format!(
                            "conflicting order at {}:{} (in `{}`); pick one order for this pair crate-wide",
                            witness.0, witness.1, witness.3
                        )),
                        suppressed: None,
                        baselined: false,
                    });
                }
            }

            // (b) Longer cycles in the acquisition digraph.
            let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
            for (a, b) in edges.keys() {
                adj.entry(a.as_str()).or_default().insert(b.as_str());
            }
            for cycle in find_cycles(&adj) {
                if cycle.len() == 2 {
                    let pair = (
                        cycle[0].clone().min(cycle[1].clone()),
                        cycle[0].clone().max(cycle[1].clone()),
                    );
                    if flagged_pairs.contains(&pair) {
                        continue; // already reported as an inconsistent pair
                    }
                }
                let first_edge = (cycle[0].clone(), cycle[1 % cycle.len()].clone());
                let Some(sites) = edges.get(&first_edge) else { continue };
                let (file, line, col, function) = &sites[0];
                let mut path = cycle.join(" -> ");
                path.push_str(" -> ");
                path.push_str(&cycle[0]);
                out.push(Finding {
                    rule: self.name(),
                    severity: self.severity(),
                    file: file.clone(),
                    line: *line,
                    col: *col,
                    function: function.clone(),
                    message: format!("lock acquisition cycle: {}", path),
                    note: Some(
                        "a cycle in the acquisition graph means two threads can deadlock; break it by reordering or narrowing a guard scope"
                            .to_string(),
                    ),
                    suppressed: None,
                    baselined: false,
                });
            }
        }
    }
}

/// Finds `.lock()` sites in non-test code with their guard scopes.
fn find_acquisitions(file: &SourceFile) -> Vec<Acquisition> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        if !toks.get(i + 1).map(|t| t.is_ident("lock")).unwrap_or(false)
            || toks.get(i + 2).map(|t| t.kind) != Some(TokenKind::Open(Delim::Paren))
        {
            continue;
        }
        if !in_nontest_function(file, i) {
            continue;
        }
        let name = receiver_chain(toks, i);
        if name.is_empty() {
            continue;
        }
        out.push(Acquisition {
            name,
            dot: i,
            scope_end: guard_scope_end(toks, i),
            line: toks[i + 1].line,
            col: toks[i + 1].col,
        });
    }
    out
}

/// Where the guard born at the `.lock()` at `dot` dies (token index,
/// exclusive). A statement opened by `let`/`if`/`while`/`match`/`for`
/// binds the guard into the surrounding block; a bare expression
/// statement drops its temporaries at the `;`.
fn guard_scope_end(toks: &[Token], dot: usize) -> usize {
    let depth = toks[dot].brace_depth;
    // Find the statement keyword: walk back to the statement start —
    // just past the previous `;` at this depth or the enclosing `{`.
    let mut start = dot;
    while start > 0 {
        let prev = &toks[start - 1];
        if prev.brace_depth < depth {
            break; // enclosing `{` (its depth is recorded outside)
        }
        if (prev.is_punct(';') || prev.kind == TokenKind::Close(Delim::Brace))
            && prev.brace_depth == depth
        {
            break;
        }
        start -= 1;
    }
    let binding = toks
        .get(start)
        .map(|t| {
            t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "let" | "if" | "while" | "match" | "for")
        })
        .unwrap_or(false);
    if binding {
        // Block-scoped: to the `}` that closes the current block.
        for (j, tok) in toks.iter().enumerate().skip(dot) {
            if tok.kind == TokenKind::Close(Delim::Brace) && tok.brace_depth < depth {
                return j;
            }
        }
        toks.len()
    } else {
        // Statement-scoped: to the next `;` at this depth (or the block
        // end if the statement is the block's tail expression).
        for (j, tok) in toks.iter().enumerate().skip(dot) {
            if tok.is_punct(';') && tok.brace_depth == depth {
                return j + 1;
            }
            if tok.kind == TokenKind::Close(Delim::Brace) && tok.brace_depth < depth {
                return j;
            }
        }
        toks.len()
    }
}

/// Enumerates simple cycles in a small digraph, each rotated so its
/// lexicographically-smallest node comes first, deduplicated, in
/// deterministic order.
fn find_cycles<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<String>> {
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &root in adj.keys() {
        // DFS from each root; only record cycles that return to it.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(root, vec![root])];
        let mut steps = 0usize;
        while let Some((node, path)) = stack.pop() {
            steps += 1;
            if steps > 10_000 {
                break; // degenerate graph; findings elsewhere will surface it
            }
            let Some(nexts) = adj.get(node) else { continue };
            for &next in nexts {
                if next == root && path.len() >= 2 {
                    let mut cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    // Rotate the smallest node to the front.
                    let min_pos = cycle
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    cycle.rotate_left(min_pos);
                    cycles.insert(cycle);
                } else if !path.contains(&next) {
                    let mut next_path = path.clone();
                    next_path.push(next);
                    stack.push((next, next_path));
                }
            }
        }
    }
    cycles.into_iter().collect()
}

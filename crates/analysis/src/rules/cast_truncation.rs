//! Rule 6 — `cast-truncation`.
//!
//! The frame codec serializes payload lengths into a `len u32` field;
//! an unchecked `payload.len() as u32` silently wraps past 4 GiB and
//! produces a frame whose declared length disagrees with its body —
//! corrupting the stream for every later frame. The rule flags `as
//! u32`/`as u16`/`as u8` casts whose source expression mentions a
//! length (`len`, `*_len`, `length` within a small lookback window).
//! Severity is warning: many such casts are locally bounds-checked in
//! ways tokens cannot see, but each deserves either a `try_from` or a
//! suppression stating the bound.

use super::{function_at, in_nontest_function, Finding, Rule, Severity};
use crate::lexer::TokenKind;
use crate::model::SourceFile;

/// How many tokens before the `as` to scan for a length mention.
const LOOKBACK: usize = 6;

pub struct CastTruncation;

impl Rule for CastTruncation {
    fn name(&self) -> &'static str {
        "cast-truncation"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, files: &[SourceFile], out: &mut Vec<Finding>) {
        for file in files {
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if !toks[i].is_ident("as") {
                    continue;
                }
                let Some(target) = toks.get(i + 1) else { continue };
                if !(target.is_ident("u8") || target.is_ident("u16") || target.is_ident("u32")) {
                    continue;
                }
                if !in_nontest_function(file, i) {
                    continue;
                }
                let window = &toks[i.saturating_sub(LOOKBACK)..i];
                let length_like = window.iter().any(|t| {
                    t.kind == TokenKind::Ident
                        && (t.text == "len"
                            || t.text == "length"
                            || t.text.ends_with("_len")
                            || t.text.ends_with("_length"))
                });
                if !length_like {
                    continue;
                }
                out.push(Finding {
                    rule: self.name(),
                    severity: self.severity(),
                    file: file.path.clone(),
                    line: toks[i].line,
                    col: toks[i].col,
                    function: function_at(file, i),
                    message: format!(
                        "unchecked `as {}` on a length expression can truncate silently",
                        target.text
                    ),
                    note: Some(
                        "use `u32::try_from(..)` (or check against the codec's max) so oversized lengths fail loudly"
                            .to_string(),
                    ),
                    suppressed: None,
                    baselined: false,
                });
            }
        }
    }
}

//! Rule 1 — `nondet-iteration`.
//!
//! `HashMap`/`HashSet` iteration order varies run to run (and with the
//! hasher's random seed), so iterating one inside any function that
//! feeds serialized or canonical output — report assembly, fingerprint
//! computation, JSON/artifact writers — silently breaks bit-identical
//! determinism. The rule computes the call closure of canonical-output
//! roots (by name pattern) and flags hash-typed iteration inside it,
//! unless the surrounding code visibly imposes an order afterwards
//! (a `sort*` call later in the function, or collecting straight into a
//! `BTreeMap`/`BTreeSet`).

use super::{
    closure_from_roots, function_at, hash_bindings_by_crate, receiver_chain, Finding, Rule,
    Severity,
};
use crate::lexer::{Delim, TokenKind};
use crate::model::SourceFile;

/// Method names that enumerate a collection in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Whether a function name marks a canonical/serialized-output root.
pub fn is_canonical_root(name: &str) -> bool {
    name == "key"
        || name == "to_hex"
        || name.contains("to_json")
        || name.contains("fingerprint")
        || name.contains("canonical")
        || name.starts_with("render")
        || name.starts_with("snapshot")
        || name.starts_with("export")
        || name.starts_with("assemble")
        || name.starts_with("serialize")
}

pub struct NondetIteration;

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, files: &[SourceFile], out: &mut Vec<Finding>) {
        let closure = closure_from_roots(files, &is_canonical_root);
        let hash_bindings = hash_bindings_by_crate(files);
        for file in files {
            let Some(bindings) = hash_bindings.get(&file.crate_name) else { continue };
            if bindings.is_empty() {
                continue;
            }
            let toks = &file.tokens;
            for func in file.functions.iter().filter(|f| !f.is_test) {
                if !closure.contains(&func.name) {
                    continue;
                }
                for i in func.body.clone() {
                    // `for pat in &recv { … }` — iterating the map itself.
                    if toks[i].kind == TokenKind::Ident
                        && bindings.contains(&toks[i].text)
                        && inside_for_header(toks, i, func.body.start)
                        && chain_ends_at_loop_body(toks, i)
                        && !order_imposed_after(toks, i, func.body.end)
                    {
                        out.push(Finding {
                            rule: self.name(),
                            severity: self.severity(),
                            file: file.path.clone(),
                            line: toks[i].line,
                            col: toks[i].col,
                            function: function_at(file, i),
                            message: format!(
                                "`for` iteration over hash-ordered `{}` inside `{}`, which feeds canonical/serialized output",
                                toks[i].text, func.name
                            ),
                            note: Some(
                                "hash iteration order is nondeterministic; collect into a BTreeMap/Vec+sort or change the field type"
                                    .to_string(),
                            ),
                            suppressed: None,
                            baselined: false,
                        });
                        continue;
                    }
                    // `recv.iter()` / `recv.keys()` / …
                    if !toks[i].is_punct('.') {
                        continue;
                    }
                    let Some(method) = toks.get(i + 1) else { continue };
                    if method.kind != TokenKind::Ident
                        || !ITER_METHODS.contains(&method.text.as_str())
                        || toks.get(i + 2).map(|t| t.kind) != Some(TokenKind::Open(Delim::Paren))
                    {
                        continue;
                    }
                    let chain = receiver_chain(toks, i);
                    let leaf = chain.rsplit('.').next().unwrap_or(&chain);
                    let leaf = leaf.trim_end_matches("[_]");
                    if leaf.is_empty() || !bindings.contains(leaf) {
                        continue;
                    }
                    if order_imposed_after(toks, i, func.body.end) {
                        continue;
                    }
                    out.push(Finding {
                        rule: self.name(),
                        severity: self.severity(),
                        file: file.path.clone(),
                        line: toks[i + 1].line,
                        col: toks[i + 1].col,
                        function: function_at(file, i),
                        message: format!(
                            "iteration over hash-ordered `{}` inside `{}`, which feeds canonical/serialized output",
                            chain, func.name
                        ),
                        note: Some(
                            "hash iteration order is nondeterministic; collect into a BTreeMap/Vec+sort or change the field type"
                                .to_string(),
                        ),
                        suppressed: None,
                        baselined: false,
                    });
                }
            }
        }
    }
}

/// Whether token `i` sits in a `for … in <expr>` header: a `for`
/// keyword precedes it (after the previous statement boundary) with an
/// `in` between them and no `{` yet.
fn inside_for_header(toks: &[crate::lexer::Token], i: usize, body_start: usize) -> bool {
    let mut saw_in = false;
    let mut k = i;
    while k > body_start {
        k -= 1;
        let tok = &toks[k];
        match tok.kind {
            TokenKind::Open(Delim::Brace) | TokenKind::Close(Delim::Brace) => return false,
            TokenKind::Ident if tok.text == "in" => saw_in = true,
            TokenKind::Ident if tok.text == "for" => return saw_in,
            TokenKind::Punct if tok.is_punct(';') => return false,
            _ => {}
        }
    }
    false
}

/// Whether the receiver chain starting at ident `i` runs straight into
/// the loop body's `{` — i.e. the map itself is the iterated expression
/// (`for x in &self.map {`), not a call on it (`for i in 0..map.len()`).
fn chain_ends_at_loop_body(toks: &[crate::lexer::Token], i: usize) -> bool {
    let mut k = i + 1;
    while k + 1 < toks.len() && toks[k].is_punct('.') && toks[k + 1].kind == TokenKind::Ident {
        k += 2;
    }
    toks.get(k).map(|t| t.kind) == Some(TokenKind::Open(Delim::Brace))
}

/// Whether the code after the iteration visibly restores determinism:
/// a `sort*` call later in the same function, or a collect into a
/// `BTreeMap`/`BTreeSet` within the same statement.
fn order_imposed_after(toks: &[crate::lexer::Token], site: usize, body_end: usize) -> bool {
    let depth = toks[site].brace_depth;
    let mut k = site;
    while k < body_end {
        let tok = &toks[k];
        if tok.kind == TokenKind::Ident
            && tok.text.starts_with("sort")
            && toks.get(k + 1).map(|t| t.kind) == Some(TokenKind::Open(Delim::Paren))
        {
            return true;
        }
        // Statement boundary: BTree collection only counts before it.
        if tok.is_punct(';') && tok.brace_depth <= depth {
            break;
        }
        if tok.is_ident("BTreeMap") || tok.is_ident("BTreeSet") {
            return true;
        }
        k += 1;
    }
    // Past the statement: still accept a later sort in the function.
    while k < body_end {
        let tok = &toks[k];
        if tok.kind == TokenKind::Ident
            && tok.text.starts_with("sort")
            && toks.get(k + 1).map(|t| t.kind) == Some(TokenKind::Open(Delim::Paren))
        {
            return true;
        }
        k += 1;
    }
    false
}

//! Rule 4 — `unsafe-without-safety`.
//!
//! Every `unsafe` block, function, or impl must carry an adjacent
//! comment justifying why the invariants hold: a `// SAFETY: …` line
//! directly above (or trailing on the same line), or a doc comment with
//! a `# Safety` section for `unsafe fn` declarations. Unlike the other
//! rules this one applies to test code too — an unjustified `unsafe`
//! in a test is still an unjustified `unsafe`.

use super::{function_at, Finding, Rule, Severity};
use crate::lexer::TokenKind;
use crate::model::SourceFile;

pub struct UnsafeWithoutSafety;

/// A run of contiguous comments (a multi-line `//` justification is
/// lexed one line at a time; adjacency must see the whole block).
struct CommentRun {
    line: u32,
    end_line: u32,
    trailing: bool,
    has_safety: bool,
}

fn comment_runs(file: &SourceFile) -> Vec<CommentRun> {
    let mut runs: Vec<CommentRun> = Vec::new();
    for c in &file.comments {
        let has_safety = c.text.contains("SAFETY:") || c.text.contains("# Safety");
        match runs.last_mut() {
            // A standalone comment directly below the previous run
            // continues it.
            Some(run) if !c.trailing && c.line == run.end_line + 1 => {
                run.end_line = c.end_line;
                run.has_safety |= has_safety;
            }
            _ => runs.push(CommentRun {
                line: c.line,
                end_line: c.end_line,
                trailing: c.trailing,
                has_safety,
            }),
        }
    }
    runs
}

impl Rule for UnsafeWithoutSafety {
    fn name(&self) -> &'static str {
        "unsafe-without-safety"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, files: &[SourceFile], out: &mut Vec<Finding>) {
        for file in files {
            let runs = comment_runs(file);
            for (i, tok) in file.tokens.iter().enumerate() {
                if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
                    continue;
                }
                let justified = runs.iter().any(|run| {
                    // Trailing on the unsafe line, or a run ending
                    // directly above it (multi-line arguments included).
                    run.has_safety
                        && ((run.trailing && run.line == tok.line) || run.end_line + 1 == tok.line)
                });
                if justified {
                    continue;
                }
                out.push(Finding {
                    rule: self.name(),
                    severity: self.severity(),
                    file: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    function: function_at(file, i),
                    message: "`unsafe` without an adjacent `// SAFETY:` justification".to_string(),
                    note: Some(
                        "state the invariant that makes this sound in a `// SAFETY:` comment directly above"
                            .to_string(),
                    ),
                    suppressed: None,
                    baselined: false,
                });
            }
        }
    }
}

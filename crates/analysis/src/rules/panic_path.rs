//! Rule 5 — `panic-in-hot-path`.
//!
//! The serving/fleet hot paths handle peer-controlled bytes: a panic
//! there is a remote crash, and under the reactor it takes every
//! connection on the thread down with it. Inside the hot files the rule
//! flags `unwrap()`/`expect()` calls, `panic!`/`unreachable!`/`todo!`
//! invocations, and direct indexing/slicing of protocol-input buffers
//! (`header[0]`, `&buf[a..b]` — anything a malformed frame can push out
//! of bounds; `.get()` is the structured alternative). Internal buffers
//! whose indices are kernel- or self-maintained invariants (`chunk` from
//! `read(2)`, the write buffer) are deliberately not in the protocol
//! ident list.

use super::{function_at, Finding, Rule, Severity};
use crate::lexer::{Delim, TokenKind};
use crate::model::SourceFile;

/// Hot files: the reactor, fleet coordinator, server accept loop,
/// client, and all of `crates/net`'s connection handling.
fn is_hot_file(path: &str) -> bool {
    path.starts_with("crates/net/src/")
        || path.ends_with("/reactor.rs")
        || path.ends_with("/fleet.rs")
        || path.ends_with("/server.rs")
        || path.ends_with("/client.rs")
}

/// Identifiers that name peer-controlled input in the hot files.
const PROTOCOL_IDENTS: &[&str] = &[
    "payload", "header", "buf", "rbuf", "line", "bytes", "frame", "body", "input", "wire",
    "request",
];

/// Macros that abort the thread.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

pub struct PanicInHotPath;

impl Rule for PanicInHotPath {
    fn name(&self) -> &'static str {
        "panic-in-hot-path"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, files: &[SourceFile], out: &mut Vec<Finding>) {
        for file in files {
            if !is_hot_file(&file.path) {
                continue;
            }
            let toks = &file.tokens;
            for func in file.functions.iter().filter(|f| !f.is_test) {
                for i in func.body.clone() {
                    let tok = &toks[i];
                    if tok.kind != TokenKind::Ident {
                        continue;
                    }
                    // `.unwrap()` / `.expect(` — exact method names, so
                    // `unwrap_or_else` stays legal.
                    if (tok.text == "unwrap" || tok.text == "expect")
                        && i >= 1
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Open(Delim::Paren))
                    {
                        self.flag(out, file, i, format!("`.{}()` in a hot path", tok.text));
                        continue;
                    }
                    // `panic!(` and friends.
                    if PANIC_MACROS.contains(&tok.text.as_str())
                        && toks.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false)
                    {
                        self.flag(out, file, i, format!("`{}!` in a hot path", tok.text));
                        continue;
                    }
                    // `header[..]`-style indexing of protocol input.
                    if PROTOCOL_IDENTS.contains(&tok.text.as_str())
                        && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Open(Delim::Bracket))
                    {
                        self.flag(
                            out,
                            file,
                            i,
                            format!(
                                "direct indexing of protocol input `{}` (out-of-bounds panics on malformed frames)",
                                tok.text
                            ),
                        );
                    }
                }
            }
        }
    }
}

impl PanicInHotPath {
    fn flag(&self, out: &mut Vec<Finding>, file: &SourceFile, idx: usize, message: String) {
        let tok = &file.tokens[idx];
        out.push(Finding {
            rule: self.name(),
            severity: self.severity(),
            file: file.path.clone(),
            line: tok.line,
            col: tok.col,
            function: function_at(file, idx),
            message,
            note: Some(
                "return a structured error (or use `.get()`) — a panic here is a peer-triggerable crash"
                    .to_string(),
            ),
            suppressed: None,
            baselined: false,
        });
    }
}

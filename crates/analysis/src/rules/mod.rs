//! The rule registry and the analyses the rules share.
//!
//! Each rule lives in its own module and implements [`Rule`]: it walks
//! the structured token streams and pushes [`Finding`]s. Rules never see
//! suppressions or baselines — those are applied by the driver in
//! `lib.rs`, so a rule module stays a pure detector.

pub mod cast_truncation;
pub mod lock_order;
pub mod nondet_iteration;
pub mod panic_path;
pub mod unsafe_safety;
pub mod wall_clock;

use crate::lexer::{Delim, Token, TokenKind};
use crate::model::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// How bad a finding is. The exit policy does not distinguish — any
/// unsuppressed, non-baselined finding fails the lint run — but the
/// rendering and JSON do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Suspicious; worth a look.
    Warning,
    /// A determinism or concurrency-discipline violation.
    Error,
}

impl Severity {
    /// The lowercase label used in diagnostics and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule's kebab-case name.
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// The enclosing function's name, or `<file>` outside any function.
    pub function: String,
    /// Human-readable description of the violation.
    pub message: String,
    /// Optional `note:` line with extra context (the other lock site,
    /// the canonical root that makes a path hot, …).
    pub note: Option<String>,
    /// The suppression reason, if an `asynd-lint: allow` covers this
    /// finding. Filled in by the driver, never by rules.
    pub suppressed: Option<String>,
    /// Whether a baseline budget waives this finding. Filled in by the
    /// driver, never by rules.
    pub baselined: bool,
}

/// A detector over the whole workspace.
pub trait Rule {
    /// The rule's kebab-case name (used in `allow(...)` and baselines).
    fn name(&self) -> &'static str;
    /// The rule's severity.
    fn severity(&self) -> Severity;
    /// Scans `files` and appends findings.
    fn check(&self, files: &[SourceFile], out: &mut Vec<Finding>);
}

/// All rules, in a fixed order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nondet_iteration::NondetIteration),
        Box::new(wall_clock::WallClockInCanonical),
        Box::new(lock_order::LockOrder),
        Box::new(unsafe_safety::UnsafeWithoutSafety),
        Box::new(panic_path::PanicInHotPath),
        Box::new(cast_truncation::CastTruncation),
    ]
}

/// Names that are too generic to traverse through when computing call
/// closures: `new`, `len`, `get`, … are defined by half the workspace
/// and by the standard library, so following them merges unrelated call
/// graphs into one giant blob. Calls *to* them are ignored.
const OPAQUE_NAMES: &[&str] = &[
    // Container / conversion vocabulary.
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "fmt",
    "drop",
    "next",
    "iter",
    "write",
    "read",
    "from",
    "into",
    "to_string",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "as_str",
    "as_bytes",
    "unwrap",
    "expect",
    "ok",
    "err",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "lock",
    "send",
    "recv",
    // Generic single-verb names: a dozen unrelated `run`/`parse`/`start`
    // functions exist across the workspace, and merging them would wire
    // every call graph into one blob (a `parse` inside a canonical root
    // must not drag in the CLI's `parse`, the lexer's, and the frame
    // decoder's at once).
    "parse",
    "run",
    "start",
    "stop",
    "spawn",
    "join",
    "poll",
    "wait",
    "init",
    "open",
    "close",
    "load",
    "save",
    "reset",
    "update",
    "apply",
    "process",
    "handle",
    "flush",
    "step",
    "tick",
    "build",
    "lex",
    "call",
    "execute",
    "main",
];

/// Computes the set of function names reachable from root functions via
/// the (name-merged, test-free) workspace call graph. `is_root` selects
/// the roots by name. The result contains the roots themselves.
pub fn closure_from_roots(
    files: &[SourceFile],
    is_root: &dyn Fn(&str) -> bool,
) -> BTreeSet<String> {
    let mut calls_by_name: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for file in files {
        for func in file.functions.iter().filter(|f| !f.is_test) {
            let entry = calls_by_name.entry(func.name.as_str()).or_default();
            for call in &func.calls {
                if !OPAQUE_NAMES.contains(&call.as_str()) {
                    entry.insert(call.as_str());
                }
            }
        }
    }
    let mut reached: BTreeSet<String> = BTreeSet::new();
    let mut frontier: Vec<&str> =
        calls_by_name.keys().copied().filter(|name| is_root(name)).collect();
    while let Some(name) = frontier.pop() {
        if !reached.insert(name.to_string()) {
            continue;
        }
        if let Some(callees) = calls_by_name.get(name) {
            for callee in callees {
                if !reached.contains(*callee) {
                    frontier.push(callee);
                }
            }
        }
    }
    reached
}

/// Collects, per crate, the binding/field names declared with a
/// `HashMap`/`HashSet` type or initialized from `HashMap::new()` /
/// `HashSet::new()`. This is the nondet-iteration rule's stand-in for
/// type inference: a name is "hash-typed" if any declaration in the
/// crate says so.
pub fn hash_bindings_by_crate(files: &[SourceFile]) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for file in files {
        let set = out.entry(file.crate_name.clone()).or_default();
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !(toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet")) {
                continue;
            }
            // `let [mut] name = HashMap::new()` — the name sits just
            // before the `=`.
            if i >= 2 && toks[i - 1].is_punct('=') && toks[i - 2].kind == TokenKind::Ident {
                set.insert(toks[i - 2].text.clone());
                continue;
            }
            // `name: [&..] [path::]HashMap<..>` — a field, parameter or
            // annotated let. Walk back over the path prefix, then over
            // `&`, `mut` and lifetimes, to the `name :`.
            let mut k = i;
            while k >= 3
                && toks[k - 1].is_punct(':')
                && toks[k - 2].is_punct(':')
                && toks[k - 3].kind == TokenKind::Ident
            {
                k -= 3; // path segment `seg ::`
            }
            let mut j = k;
            while j >= 1 {
                let prev = &toks[j - 1];
                if prev.is_punct('&') || prev.is_ident("mut") || prev.kind == TokenKind::Lifetime {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].kind == TokenKind::Ident {
                let name = &toks[j - 2];
                if !name.is_ident("mut") {
                    set.insert(name.text.clone());
                }
            }
        }
    }
    out
}

/// Walks backwards from the `.` of a method call at `dot` and renders
/// the receiver chain (`self.inner`, `GLOBAL`, `self.shards[_]`). Index
/// expressions collapse to `[_]` — two different indexes into the same
/// field are indistinguishable, which matters for lock-order.
pub fn receiver_chain(tokens: &[Token], dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot; // index of the `.`
    loop {
        if k == 0 {
            break;
        }
        let prev = &tokens[k - 1];
        match prev.kind {
            TokenKind::Ident => {
                parts.push(prev.text.clone());
                k -= 1;
                // A further `name.` or `name::` continues the chain.
                if k >= 1 && tokens[k - 1].is_punct('.') {
                    k -= 1;
                    continue;
                }
                if k >= 2 && tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':') {
                    k -= 2;
                    continue;
                }
                break;
            }
            TokenKind::Close(Delim::Bracket) => {
                // Skip the `[...]` and keep walking the chain.
                let mut depth = 0usize;
                while k >= 1 {
                    match tokens[k - 1].kind {
                        TokenKind::Close(Delim::Bracket) => depth += 1,
                        TokenKind::Open(Delim::Bracket) => {
                            depth -= 1;
                            if depth == 0 {
                                k -= 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k -= 1;
                }
                parts.push("[_]".to_string());
                continue;
            }
            TokenKind::Close(Delim::Paren) => {
                // A call result receiver (`make().lock()`): skip the
                // parens and take the callee name.
                let mut depth = 0usize;
                while k >= 1 {
                    match tokens[k - 1].kind {
                        TokenKind::Close(Delim::Paren) => depth += 1,
                        TokenKind::Open(Delim::Paren) => {
                            depth -= 1;
                            if depth == 0 {
                                k -= 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k -= 1;
                }
                parts.push("()".to_string());
                continue;
            }
            _ => break,
        }
    }
    parts.reverse();
    let mut name = String::new();
    for part in parts {
        if part == "[_]" || part == "()" {
            name.push_str(&part);
        } else {
            if !name.is_empty() {
                name.push('.');
            }
            name.push_str(&part);
        }
    }
    name
}

/// The function name for a finding at token `idx`, or `<file>`.
pub fn function_at(file: &SourceFile, idx: usize) -> String {
    file.enclosing_function(idx).map(|f| f.name.clone()).unwrap_or_else(|| "<file>".to_string())
}

/// Whether token `idx` lies inside any non-test function body. Tokens
/// in test functions (or outside functions entirely, for rules that
/// only reason about executable code) are skipped by most rules.
pub fn in_nontest_function(file: &SourceFile, idx: usize) -> bool {
    file.enclosing_function(idx).map(|f| !f.is_test).unwrap_or(false)
}

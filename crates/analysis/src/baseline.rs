//! The findings baseline: explicitly-granted legacy debt.
//!
//! A baseline entry is a *budget*: up to `count` findings of `rule` in
//! `file`'s `function` are waived. Keying on (rule, file, function)
//! rather than line numbers keeps the baseline stable across unrelated
//! edits; budgets mean a waived site cannot quietly multiply. The
//! shipped baseline is empty — the workspace is dogfooded clean — but
//! the mechanism is what lets CI fail on *new* findings only, so debt
//! can be granted deliberately instead of blocking an urgent change.

use crate::rules::Finding;
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// The baseline's budgets, keyed by (rule, file, function).
#[derive(Debug, Default)]
pub struct Baseline {
    budgets: BTreeMap<(String, String, String), u64>,
}

impl Baseline {
    /// An empty baseline: every finding is new.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Loads a baseline file. A missing file is an empty baseline (the
    /// strictest interpretation); a malformed one is an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline::empty());
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("read {}: {}", path.display(), e))?;
        let doc =
            serde_json::from_str(&text).map_err(|e| format!("parse {}: {}", path.display(), e))?;
        Baseline::from_json(&doc).map_err(|e| format!("{}: {}", path.display(), e))
    }

    /// Parses the JSON document form.
    pub fn from_json(doc: &Value) -> Result<Baseline, String> {
        if doc.get("version").and_then(Value::as_u64) != Some(1) {
            return Err("baseline version must be 1".to_string());
        }
        let entries = doc
            .get("entries")
            .and_then(Value::as_array)
            .ok_or_else(|| "baseline needs an `entries` array".to_string())?;
        let mut budgets = BTreeMap::new();
        for (i, entry) in entries.iter().enumerate() {
            let field = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {} missing string `{}`", i, key))
            };
            let count = entry
                .get("count")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("entry {} missing numeric `count`", i))?;
            budgets.insert((field("rule")?, field("file")?, field("function")?), count);
        }
        Ok(Baseline { budgets })
    }

    /// Builds a baseline granting exactly the given findings
    /// (unsuppressed ones only — suppressed findings are already
    /// waived in source).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut budgets: BTreeMap<(String, String, String), u64> = BTreeMap::new();
        for f in findings.iter().filter(|f| f.suppressed.is_none()) {
            *budgets
                .entry((f.rule.to_string(), f.file.clone(), f.function.clone()))
                .or_insert(0) += 1;
        }
        Baseline { budgets }
    }

    /// Serializes to the document form (sorted, so the file is
    /// byte-stable across regenerations).
    pub fn to_json(&self) -> Value {
        let mut entries = Vec::new();
        for ((rule, file, function), count) in &self.budgets {
            let mut entry = Map::new();
            entry.insert("rule", Value::from(rule.as_str()));
            entry.insert("file", Value::from(file.as_str()));
            entry.insert("function", Value::from(function.as_str()));
            entry.insert("count", Value::from(*count));
            entries.push(Value::from(entry));
        }
        let mut doc = Map::new();
        doc.insert("version", Value::from(1u64));
        doc.insert("tool", Value::from("asynd-lint"));
        doc.insert("entries", Value::from(entries));
        Value::from(doc)
    }

    /// Marks findings covered by budgets: walks findings in order and
    /// sets `baselined` on the first `count` matches of each key.
    /// Returns how many were waived.
    pub fn apply(&self, findings: &mut [Finding]) -> usize {
        let mut remaining = self.budgets.clone();
        let mut waived = 0usize;
        for f in findings.iter_mut() {
            if f.suppressed.is_some() {
                continue;
            }
            let key = (f.rule.to_string(), f.file.clone(), f.function.clone());
            if let Some(budget) = remaining.get_mut(&key) {
                if *budget > 0 {
                    *budget -= 1;
                    f.baselined = true;
                    waived += 1;
                }
            }
        }
        waived
    }

    /// Number of budget entries.
    pub fn len(&self) -> usize {
        self.budgets.len()
    }

    /// Whether the baseline waives nothing.
    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    /// Budget entries restricted to files under `prefix`.
    pub fn entries_under(&self, prefix: &str) -> Vec<(&str, &str, &str, u64)> {
        self.budgets
            .iter()
            .filter(|((_, file, _), _)| file.starts_with(prefix))
            .map(|((rule, file, function), count)| {
                (rule.as_str(), file.as_str(), function.as_str(), *count)
            })
            .collect()
    }
}

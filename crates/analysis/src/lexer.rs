//! A small, self-contained Rust lexer.
//!
//! The analyzer does not need an AST: every rule it carries is a
//! statement about token *sequences* (iteration calls, nested `.lock()`
//! scopes, `as` casts, `unsafe` keywords) plus brace/paren nesting. What
//! it absolutely must get right is *what is code and what is not*:
//! string literals, raw strings, byte strings, char literals, lifetimes
//! and (nested) comments must never leak tokens, or a rule would fire on
//! the word `HashMap` inside a doc string. That discrimination is this
//! module's whole job.
//!
//! Comments are not discarded: they come back in a side list with line
//! spans, because two rules read them (`// SAFETY:` justifications and
//! `// asynd-lint: allow(...)` suppressions).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`) — *not* a char literal.
    Lifetime,
    /// A string / raw string / byte string / char literal. The payload
    /// is intentionally opaque: rules must never match inside it.
    Literal,
    /// A numeric literal (including suffixes: `4usize`, `0xA5`).
    Number,
    /// A single punctuation character that is not a delimiter.
    Punct,
    /// `{` `}` `(` `)` `[` `]`, with nesting tracked by the lexer.
    Open(Delim),
    /// Closing counterpart of [`TokenKind::Open`].
    Close(Delim),
}

/// A delimiter family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `{` / `}`.
    Brace,
    /// `(` / `)`.
    Paren,
    /// `[` / `]`.
    Bracket,
}

/// One lexed token with its source position and nesting depths.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// The raw text (for [`TokenKind::Literal`], the opening quote run
    /// only — rules must not see literal payloads).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (byte offset within the line).
    pub col: u32,
    /// Brace nesting depth *outside* this token (an `Open(Brace)` at
    /// top level has depth 0; so does its `Close`).
    pub brace_depth: u32,
    /// Paren nesting depth outside this token.
    pub paren_depth: u32,
}

impl Token {
    /// Whether this token is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment with its line span (block comments span several lines).
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment text including its `//` / `/*` introducer.
    pub text: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line.
    pub end_line: u32,
    /// Whether source code precedes the comment on its first line (a
    /// trailing comment annotates *its own* line; a standalone comment
    /// annotates the code below it).
    pub trailing: bool,
}

/// The lexer's output: the token stream plus the comment side list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Unterminated literals or comments are tolerated
/// (the rest of the file is swallowed into the literal) — the analyzer
/// must degrade, not crash, on code mid-edit.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset where the current line starts.
    line_start: usize,
    /// Whether a non-whitespace, non-comment byte occurred on this line.
    code_on_line: bool,
    brace_depth: u32,
    paren_depth: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            code_on_line: false,
            brace_depth: 0,
            paren_depth: 0,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let byte = self.peek(0);
        self.pos += 1;
        if byte == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
            self.code_on_line = false;
        }
        byte
    }

    fn col(&self) -> u32 {
        (self.pos - self.line_start + 1) as u32
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
            brace_depth: self.brace_depth,
            paren_depth: self.paren_depth,
        });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let byte = self.peek(0);
            match byte {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_literal(0, false),
                b'\'' => self.quote(),
                b'b' if self.peek(1) == b'"' => self.string_literal(1, false),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                _ if byte == b'_' || byte.is_ascii_alphabetic() => self.ident(),
                _ if byte.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (line, start) = (self.line, self.pos);
        let trailing = self.code_on_line;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line, end_line: line, trailing });
    }

    fn block_comment(&mut self) {
        let (line, start) = (self.line, self.pos);
        let trailing = self.code_on_line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line, end_line: self.line, trailing });
    }

    /// `"…"` and `b"…"` with escape handling. `prefix` skips the `b`.
    fn string_literal(&mut self, prefix: usize, raw: bool) {
        let (line, col) = (self.line, self.col());
        self.code_on_line = true;
        for _ in 0..prefix {
            self.bump();
        }
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' if !raw => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
        self.push(TokenKind::Literal, "\"".to_string(), line, col);
    }

    /// Whether `r"`, `r#`, `br"` or `br#` starts here.
    fn raw_string_ahead(&self) -> bool {
        let after = if self.peek(0) == b'b' { 1 } else { 0 };
        if self.peek(after) != b'r' {
            return false;
        }
        let mut i = after + 1;
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    /// `r#"…"#` with any number of hashes (and `br…` variants): the
    /// closing quote must be followed by the same number of hashes.
    fn raw_string(&mut self) {
        let (line, col) = (self.line, self.col());
        self.code_on_line = true;
        if self.peek(0) == b'b' {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.src.len() {
            if self.bump() == b'"' {
                for i in 0..hashes {
                    if self.peek(i) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Literal, "r\"".to_string(), line, col);
    }

    /// A `'`: either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`, `'\u{1F980}'`). The discriminator: a lifetime is
    /// `'` + ident characters *not* followed by a closing `'`.
    fn quote(&mut self) {
        let (line, col) = (self.line, self.col());
        self.code_on_line = true;
        let next = self.peek(1);
        if (next == b'_' || next.is_ascii_alphabetic()) && next != b'\\' {
            // Scan the ident run after the quote.
            let mut i = 2;
            while self.peek(i) == b'_' || self.peek(i).is_ascii_alphanumeric() {
                i += 1;
            }
            if self.peek(i) != b'\'' {
                // Lifetime: consume quote + ident.
                self.bump();
                let start = self.pos;
                while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
                    self.bump();
                }
                let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokenKind::Lifetime, name, line, col);
                return;
            }
        }
        // Char literal.
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
            // `\u{…}` spans to the closing brace.
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
        } else {
            self.bump();
            // Multi-byte UTF-8 scalar: skip to the closing quote.
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
        }
        self.bump(); // closing quote
        self.push(TokenKind::Literal, "'".to_string(), line, col);
    }

    fn ident(&mut self) {
        let (line, col, start) = (self.line, self.col(), self.pos);
        self.code_on_line = true;
        // Raw identifier prefix `r#ident`.
        if self.peek(0) == b'r' && self.peek(1) == b'#' && self.peek(2).is_ascii_alphabetic() {
            self.bump();
            self.bump();
        }
        while self.peek(0) == b'_' || self.peek(0).is_ascii_alphanumeric() {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let text = text.strip_prefix("r#").unwrap_or(&text).to_string();
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self) {
        let (line, col, start) = (self.line, self.col(), self.pos);
        self.code_on_line = true;
        while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
            self.bump();
        }
        // A fraction only if a digit follows the dot — `0..10` must stay
        // a range, not a float.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Number, text, line, col);
    }

    fn punct(&mut self) {
        let (line, col) = (self.line, self.col());
        self.code_on_line = true;
        let byte = self.bump();
        let c = byte as char;
        match byte {
            b'{' => {
                self.push(TokenKind::Open(Delim::Brace), c.to_string(), line, col);
                self.brace_depth += 1;
            }
            b'}' => {
                self.brace_depth = self.brace_depth.saturating_sub(1);
                self.push(TokenKind::Close(Delim::Brace), c.to_string(), line, col);
            }
            b'(' => {
                self.push(TokenKind::Open(Delim::Paren), c.to_string(), line, col);
                self.paren_depth += 1;
            }
            b')' => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                self.push(TokenKind::Close(Delim::Paren), c.to_string(), line, col);
            }
            b'[' => self.push(TokenKind::Open(Delim::Bracket), c.to_string(), line, col),
            b']' => self.push(TokenKind::Close(Delim::Bracket), c.to_string(), line, col),
            _ => self.push(TokenKind::Punct, c.to_string(), line, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_do_not_leak_idents() {
        let src = r#"let x = "for HashMap in .lock() unsafe"; call(x);"#;
        let ids = idents(src);
        assert_eq!(ids, ["let", "x", "call", "x"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ fn real() {}";
        let ids = idents(src);
        assert_eq!(ids, ["fn", "real"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }
}

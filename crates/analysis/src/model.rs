//! The analyzer's view of a source file and of the workspace.
//!
//! On top of the raw token stream this module recovers just enough
//! structure for the rules: function boundaries (name + body token
//! range), which functions are test code, what each function calls, and
//! which lines carry an `// asynd-lint: allow(<rule>) -- <reason>`
//! suppression. No types, no name resolution — rules that need
//! reachability merge functions by name across the workspace, which is
//! deliberately conservative.

use crate::lexer::{self, Comment, Delim, Token, TokenKind};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "pub", "use", "mod", "struct", "enum", "impl", "trait", "where", "move", "ref", "in",
    "as", "const", "static", "unsafe", "dyn", "crate", "super", "self", "Self", "type", "async",
    "await", "extern",
];

/// One function (or method) with its body located in the token stream.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, *inside* the braces (the range
    /// excludes the `{` and `}` tokens themselves). Empty for bodyless
    /// trait-method declarations.
    pub body: Range<usize>,
    /// Names this function calls (idents followed by `(` or `!`),
    /// deduplicated, in sorted order.
    pub calls: Vec<String>,
    /// Whether the function is test code: inside a `#[cfg(test)] mod`,
    /// or directly annotated `#[test]` / `#[cfg(test)]`.
    pub is_test: bool,
}

/// One parsed `// asynd-lint: allow(<rule>) -- <reason>` marker.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The source line the suppression covers: its own line for a
    /// trailing comment, the next code line for a standalone one.
    pub covers_line: u32,
    /// The mandatory justification after `--`. Markers without a reason
    /// are ignored (the finding still fires, prompting the author).
    pub reason: String,
}

/// A lexed + structured source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The owning crate's directory name (`server`, `net`, …); the
    /// workspace root's own `src/` maps to `asyndrome`.
    pub crate_name: String,
    /// The full token stream.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// Extracted functions, in source order.
    pub functions: Vec<Function>,
    /// Valid suppressions found in comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and structures `source` under the given workspace-relative
    /// path. Public (rather than file-system-only) so rule fixture tests
    /// can feed synthetic files through the exact production path.
    pub fn parse(path: &str, crate_name: &str, source: &str) -> SourceFile {
        let lexer::Lexed { tokens, comments } = lexer::lex(source);
        let functions = extract_functions(&tokens);
        let suppressions = extract_suppressions(&comments, &tokens);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            tokens,
            comments,
            functions,
            suppressions,
        }
    }

    /// Whether a finding on `line` is suppressed for `rule`.
    pub fn suppressed(&self, rule: &str, line: u32) -> Option<&Suppression> {
        self.suppressions.iter().find(|s| s.rule == rule && s.covers_line == line)
    }

    /// The innermost function whose body contains token index `idx`.
    pub fn enclosing_function(&self, idx: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| f.body.contains(&idx))
            .min_by_key(|f| f.body.end - f.body.start)
    }
}

/// Finds the token index of the `}` matching the `{` at `open`.
pub fn matching_close(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        match tok.kind {
            TokenKind::Open(Delim::Brace) => depth += 1,
            TokenKind::Close(Delim::Brace) => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Token-index ranges (inside braces) of `#[cfg(test)] mod` bodies.
fn test_mod_regions(tokens: &[Token]) -> Vec<Range<usize>> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip past this attribute (and any further ones) to the item.
            let mut j = skip_attr(tokens, i);
            while tokens.get(j).map(|t| t.is_punct('#')).unwrap_or(false) {
                j = skip_attr(tokens, j);
            }
            if tokens.get(j).map(|t| t.is_ident("mod")).unwrap_or(false) {
                // `mod name {` — find the open brace.
                let mut k = j;
                while k < tokens.len() && tokens[k].kind != TokenKind::Open(Delim::Brace) {
                    if tokens[k].is_punct(';') {
                        break; // out-of-line `mod name;`
                    }
                    k += 1;
                }
                if k < tokens.len() && tokens[k].kind == TokenKind::Open(Delim::Brace) {
                    regions.push(k + 1..matching_close(tokens, k));
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

/// Whether `#[cfg(test)]` or `#[cfg(all(test, …))]` starts at `i`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct('#') {
        return false;
    }
    let inner = &tokens[i + 1..];
    if inner.first().map(|t| t.kind) != Some(TokenKind::Open(Delim::Bracket)) {
        return false;
    }
    if !inner.get(1).map(|t| t.is_ident("cfg")).unwrap_or(false) {
        return false;
    }
    // Any `test` ident inside the attribute's parens qualifies.
    inner.iter().take(12).any(|t| t.is_ident("test"))
}

/// Whether `#[test]` (or `#[tokio::test]`-style) starts at `i`.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct('#') {
        return false;
    }
    let inner = &tokens[i + 1..];
    inner.first().map(|t| t.kind) == Some(TokenKind::Open(Delim::Bracket))
        && inner.iter().take(6).any(|t| t.is_ident("test"))
}

/// Returns the token index just past the attribute starting at `i`
/// (which must be a `#`).
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).map(|t| t.kind) == Some(TokenKind::Open(Delim::Bracket)) {
        let mut depth = 0usize;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Open(Delim::Bracket) => depth += 1,
                TokenKind::Close(Delim::Bracket) => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    j
}

fn extract_functions(tokens: &[Token]) -> Vec<Function> {
    let test_regions = test_mod_regions(tokens);
    let mut functions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn` must introduce a named item — a following ident. `fn`
        // pointer types (`fn(u32) -> u32`) have `(` next instead.
        let Some(name_tok) = tokens.get(i + 1) else { break };
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = tokens[i].line;

        // Was this fn annotated `#[test]` / `#[cfg(test)]`? Walk
        // backwards over qualifiers and contiguous attributes.
        let mut attr_test = false;
        let mut back = i;
        while back > 0 {
            let prev = &tokens[back - 1];
            if prev.kind == TokenKind::Ident
                && matches!(prev.text.as_str(), "pub" | "unsafe" | "const" | "async" | "extern")
            {
                back -= 1;
                continue;
            }
            if prev.kind == TokenKind::Close(Delim::Bracket) {
                // Find the attribute's `#` by walking to the matching `[`.
                let mut depth = 0usize;
                let mut k = back - 1;
                loop {
                    match tokens[k].kind {
                        TokenKind::Close(Delim::Bracket) => depth += 1,
                        TokenKind::Open(Delim::Bracket) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if k > 0 && tokens[k - 1].is_punct('#') {
                    if is_test_attr(tokens, k - 1) || is_cfg_test_attr(tokens, k - 1) {
                        attr_test = true;
                    }
                    back = k - 1;
                    continue;
                }
            }
            break;
        }

        // Find the body `{`, stopping at `;` (trait declaration). The
        // signature cannot contain braces, so the first `{` is the body.
        let mut j = i + 2;
        let mut body = 0..0;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Open(Delim::Brace) => {
                    body = j + 1..matching_close(tokens, j);
                    break;
                }
                TokenKind::Punct if tokens[j].is_punct(';') && tokens[j].paren_depth == 0 => break,
                _ => {}
            }
            j += 1;
        }

        let in_test_mod = test_regions.iter().any(|r| r.contains(&i));
        let mut calls = BTreeSet::new();
        let mut k = body.start;
        while k < body.end {
            let tok = &tokens[k];
            if tok.kind == TokenKind::Ident && !KEYWORDS.contains(&tok.text.as_str()) {
                if let Some(next) = tokens.get(k + 1) {
                    if next.kind == TokenKind::Open(Delim::Paren) || next.is_punct('!') {
                        calls.insert(tok.text.clone());
                    }
                }
            }
            k += 1;
        }

        functions.push(Function {
            name,
            line,
            body: body.clone(),
            calls: calls.into_iter().collect(),
            is_test: in_test_mod || attr_test,
        });
        // Nested fns are extracted on their own pass — continue from the
        // name, not past the body, so inner `fn` keywords are seen.
        i += 2;
    }
    functions
}

fn extract_suppressions(comments: &[Comment], tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for comment in comments {
        let Some(at) = comment.text.find("asynd-lint:") else { continue };
        let rest = &comment.text[at + "asynd-lint:".len()..];
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        if rule.is_empty() {
            continue;
        }
        // The reason after `--` is mandatory; a bare marker is inert.
        let tail = &rest[close + 1..];
        let Some(dash) = tail.find("--") else { continue };
        let reason = tail[dash + 2..].trim().to_string();
        if reason.is_empty() {
            continue;
        }
        let covers_line = if comment.trailing {
            comment.line
        } else {
            // Standalone: the first code line below the comment.
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.end_line)
                .unwrap_or(comment.end_line)
        };
        out.push(Suppression { rule, covers_line, reason });
    }
    out
}

/// Scans the workspace's first-party source trees: `src/**` at the root
/// plus `crates/*/src/**`, in sorted order. `third_party/`, `target/`
/// and test/fixture trees are never scanned — the rules reason about
/// shipped code, and fixtures *intentionally* contain violations.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut roots: Vec<(String, PathBuf)> = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        roots.push(("asyndrome".to_string(), root_src));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                let name =
                    dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                roots.push((name, src));
            }
        }
    }
    for (crate_name, src_root) in roots {
        let mut paths = Vec::new();
        collect_rs(&src_root, &mut paths)?;
        paths.sort();
        for path in paths {
            let source = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            files.push(SourceFile::parse(&rel, &crate_name, &source));
        }
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_and_test_regions() {
        let src = r#"
            pub fn ship(x: u32) -> u32 { helper(x) }
            fn helper(x: u32) -> u32 { x + 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn covered() { super::ship(1); }
            }
        "#;
        let file = SourceFile::parse("lib.rs", "demo", src);
        let names: Vec<_> = file.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["ship", "helper", "covered"]);
        assert!(!file.functions[0].is_test);
        assert!(file.functions[2].is_test);
        assert_eq!(file.functions[0].calls, ["helper"]);
    }

    #[test]
    fn test_attr_without_mod() {
        let src = "#[test]\nfn standalone() { target(); }\nfn normal() {}";
        let file = SourceFile::parse("lib.rs", "demo", src);
        assert!(file.functions[0].is_test);
        assert!(!file.functions[1].is_test);
    }

    #[test]
    fn suppressions_trailing_and_standalone() {
        let src = "\
let a = m.lock(); // asynd-lint: allow(lock-order) -- held briefly\n\
// asynd-lint: allow(panic-in-hot-path) -- startup only\n\
let b = q.lock();\n\
// asynd-lint: allow(cast-truncation)\n\
let c = x as u8;\n";
        let file = SourceFile::parse("lib.rs", "demo", src);
        assert_eq!(file.suppressions.len(), 2, "reasonless marker must be inert");
        assert!(file.suppressed("lock-order", 1).is_some());
        assert!(file.suppressed("panic-in-hot-path", 3).is_some());
        assert!(file.suppressed("cast-truncation", 5).is_none());
    }
}

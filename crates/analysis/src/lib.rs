//! `asynd-analysis` — the workspace's determinism & concurrency-
//! discipline static analyzer.
//!
//! Everything this repository claims rests on bit-identical output
//! across thread counts, machines, and runs — and on lock-based
//! concurrency staying disciplined as the codebase grows. The compiler
//! checks neither: a `HashMap` iteration feeding a canonical report, a
//! wall-clock read upstream of a fingerprint, or an inverted lock order
//! all compile clean and fail probabilistically. This crate is the
//! mechanical backstop: six rules over a token-level Rust lexer (no
//! AST, no rustc internals, no external parser), run as `asynd lint`.
//!
//! The pipeline: [`scan_workspace`] lexes and structures every
//! first-party source file, [`analyze`] runs the rules and applies
//! in-source suppressions, a [`baseline::Baseline`] waives explicitly
//! granted legacy findings, and what survives fails the build. The
//! analyzer dogfoods itself: this crate is part of the workspace it
//! scans, and the shipped baseline is empty.

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod rules;

pub use baseline::Baseline;
pub use model::{scan_workspace, SourceFile};
pub use rules::{Finding, Severity};

use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// The rule names, in registry order.
pub fn rule_names() -> Vec<&'static str> {
    rules::all_rules().iter().map(|r| r.name()).collect()
}

/// Runs every rule over `files`, applies in-source suppressions, and
/// returns findings sorted by (file, line, col, rule). Baselines are
/// *not* applied here — callers decide whether legacy debt is waived.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules::all_rules() {
        rule.check(files, &mut findings);
    }
    let by_path: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    for finding in &mut findings {
        if let Some(file) = by_path.get(finding.file.as_str()) {
            if let Some(s) = file.suppressed(finding.rule, finding.line) {
                finding.suppressed = Some(s.reason.clone());
            }
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.col == b.col && a.rule == b.rule
    });
    findings
}

/// Renders findings rustc-style. Suppressed and baselined findings are
/// summarized but not itemized unless `verbose`.
pub fn render_text(findings: &[Finding], verbose: bool) -> String {
    let mut out = String::new();
    for f in findings {
        let waived = f.suppressed.is_some() || f.baselined;
        if waived && !verbose {
            continue;
        }
        let status = if f.suppressed.is_some() {
            " (suppressed)"
        } else if f.baselined {
            " (baselined)"
        } else {
            ""
        };
        out.push_str(&format!(
            "{}[{}]{}: {}\n  --> {}:{}:{} (in `{}`)\n",
            f.severity.label(),
            f.rule,
            status,
            f.message,
            f.file,
            f.line,
            f.col,
            f.function
        ));
        if let Some(note) = &f.note {
            out.push_str(&format!("  note: {}\n", note));
        }
        if let Some(reason) = &f.suppressed {
            out.push_str(&format!("  allowed: {}\n", reason));
        }
    }
    let total = findings.len();
    let suppressed = findings.iter().filter(|f| f.suppressed.is_some()).count();
    let baselined = findings.iter().filter(|f| f.baselined).count();
    let new = total - suppressed - baselined;
    out.push_str(&format!(
        "lint: {} finding{} ({} suppressed, {} baselined, {} new)\n",
        total,
        if total == 1 { "" } else { "s" },
        suppressed,
        baselined,
        new
    ));
    out
}

/// The machine-readable findings document (what `--json` emits and
/// `asynd validate --lints` checks).
pub fn findings_to_json(findings: &[Finding]) -> Value {
    let mut items = Vec::new();
    let mut by_rule: BTreeMap<&str, u64> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule).or_insert(0) += 1;
        let mut item = Map::new();
        item.insert("rule", Value::from(f.rule));
        item.insert("severity", Value::from(f.severity.label()));
        item.insert("file", Value::from(f.file.as_str()));
        item.insert("line", Value::from(u64::from(f.line)));
        item.insert("col", Value::from(u64::from(f.col)));
        item.insert("function", Value::from(f.function.as_str()));
        item.insert("message", Value::from(f.message.as_str()));
        match &f.note {
            Some(note) => item.insert("note", Value::from(note.as_str())),
            None => item.insert("note", Value::Null),
        };
        match &f.suppressed {
            Some(reason) => item.insert("suppressed", Value::from(reason.as_str())),
            None => item.insert("suppressed", Value::Null),
        };
        item.insert("baselined", Value::from(f.baselined));
        items.push(Value::from(item));
    }
    let total = findings.len() as u64;
    let suppressed = findings.iter().filter(|f| f.suppressed.is_some()).count() as u64;
    let baselined = findings.iter().filter(|f| f.baselined).count() as u64;
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error && f.suppressed.is_none() && !f.baselined)
        .count() as u64;
    let warnings = findings
        .iter()
        .filter(|f| f.severity == Severity::Warning && f.suppressed.is_none() && !f.baselined)
        .count() as u64;
    let mut rule_counts = Map::new();
    for (rule, count) in by_rule {
        rule_counts.insert(rule, Value::from(count));
    }
    let mut summary = Map::new();
    summary.insert("total", Value::from(total));
    summary.insert("suppressed", Value::from(suppressed));
    summary.insert("baselined", Value::from(baselined));
    summary.insert("new", Value::from(total - suppressed - baselined));
    summary.insert("errors", Value::from(errors));
    summary.insert("warnings", Value::from(warnings));
    summary.insert("by_rule", Value::from(rule_counts));
    let mut doc = Map::new();
    doc.insert("version", Value::from(1u64));
    doc.insert("tool", Value::from("asynd-lint"));
    doc.insert("rules", Value::from(rule_names().into_iter().map(Value::from).collect::<Vec<_>>()));
    doc.insert("findings", Value::from(items));
    doc.insert("summary", Value::from(summary));
    Value::from(doc)
}

/// Validates a findings document: schema, rule names, ordering, and a
/// summary that matches a recount. Returns a one-line description on
/// success, the list of problems on failure.
pub fn validate_lints(doc: &Value) -> Result<String, Vec<String>> {
    let mut problems = Vec::new();
    if doc.get("version").and_then(Value::as_u64) != Some(1) {
        problems.push("version must be 1".to_string());
    }
    if doc.get("tool").and_then(Value::as_str) != Some("asynd-lint") {
        problems.push("tool must be \"asynd-lint\"".to_string());
    }
    let known = rule_names();
    match doc.get("rules").and_then(Value::as_array) {
        Some(rules) => {
            let listed: Vec<&str> = rules.iter().filter_map(Value::as_str).collect();
            for rule in &known {
                if !listed.contains(rule) {
                    problems.push(format!("rules[] is missing `{}`", rule));
                }
            }
        }
        None => problems.push("missing rules[] array".to_string()),
    }
    let empty = Vec::new();
    let findings = match doc.get("findings").and_then(Value::as_array) {
        Some(f) => f,
        None => {
            problems.push("missing findings[] array".to_string());
            &empty
        }
    };
    let mut prev_key: Option<(String, u64, u64, String)> = None;
    let (mut suppressed, mut baselined) = (0u64, 0u64);
    for (i, item) in findings.iter().enumerate() {
        let rule = item.get("rule").and_then(Value::as_str).unwrap_or("");
        if !known.contains(&rule) {
            problems.push(format!("finding {}: unknown rule `{}`", i, rule));
        }
        match item.get("severity").and_then(Value::as_str) {
            Some("warning") | Some("error") => {}
            other => problems.push(format!("finding {}: bad severity {:?}", i, other)),
        }
        let file = item.get("file").and_then(Value::as_str).unwrap_or("").to_string();
        if file.is_empty() {
            problems.push(format!("finding {}: missing file", i));
        }
        let line = item.get("line").and_then(Value::as_u64).unwrap_or(0);
        let col = item.get("col").and_then(Value::as_u64).unwrap_or(0);
        if line == 0 || col == 0 {
            problems.push(format!("finding {}: line/col must be >= 1", i));
        }
        if item.get("message").and_then(Value::as_str).map(str::is_empty).unwrap_or(true) {
            problems.push(format!("finding {}: missing message", i));
        }
        let key = (file, line, col, rule.to_string());
        if let Some(prev) = &prev_key {
            if *prev > key {
                problems.push(format!(
                    "finding {}: out of order (findings must sort by file,line,col,rule)",
                    i
                ));
            }
        }
        prev_key = Some(key);
        if item.get("suppressed").map(|v| !v.is_null()).unwrap_or(false) {
            suppressed += 1;
        }
        if item.get("baselined").and_then(Value::as_bool).unwrap_or(false) {
            baselined += 1;
        }
    }
    let total = findings.len() as u64;
    if let Some(summary) = doc.get("summary") {
        let check = |key: &str, want: u64| -> Option<String> {
            let got = summary.get(key).and_then(Value::as_u64);
            (got != Some(want))
                .then(|| format!("summary.{} is {:?}, recount says {}", key, got, want))
        };
        problems.extend(check("total", total));
        problems.extend(check("suppressed", suppressed));
        problems.extend(check("baselined", baselined));
        problems.extend(check("new", total - suppressed - baselined));
    } else {
        problems.push("missing summary".to_string());
    }
    if problems.is_empty() {
        Ok(format!(
            "lints document ok: {} findings, {} suppressed, {} baselined, {} new",
            total,
            suppressed,
            baselined,
            total - suppressed - baselined
        ))
    } else {
        Err(problems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_validates() {
        let findings = vec![Finding {
            rule: "panic-in-hot-path",
            severity: Severity::Error,
            file: "crates/net/src/frame.rs".to_string(),
            line: 10,
            col: 5,
            function: "decode".to_string(),
            message: "`.unwrap()` in a hot path".to_string(),
            note: None,
            suppressed: None,
            baselined: false,
        }];
        let doc = findings_to_json(&findings);
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let parsed = serde_json::from_str(&text).unwrap();
        let verdict = validate_lints(&parsed).expect("document must validate");
        assert!(verdict.contains("1 findings"), "{}", verdict);
    }

    #[test]
    fn validate_rejects_unsorted_and_bad_summary() {
        let findings = vec![
            Finding {
                rule: "cast-truncation",
                severity: Severity::Warning,
                file: "b.rs".to_string(),
                line: 1,
                col: 1,
                function: "f".to_string(),
                message: "m".to_string(),
                note: None,
                suppressed: None,
                baselined: false,
            },
            Finding {
                rule: "cast-truncation",
                severity: Severity::Warning,
                file: "a.rs".to_string(),
                line: 1,
                col: 1,
                function: "f".to_string(),
                message: "m".to_string(),
                note: None,
                suppressed: None,
                baselined: false,
            },
        ];
        let doc = findings_to_json(&findings);
        let errs = validate_lints(&doc).expect_err("unsorted findings must fail");
        assert!(errs.iter().any(|e| e.contains("out of order")), "{:?}", errs);
    }
}
